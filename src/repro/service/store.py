"""FactorizationStore: content-addressed persistence + LRU cache of factors.

The store maps a **fingerprint** (see
:func:`~repro.service.problems.spec_fingerprint`) to a *factorized*
:class:`~repro.core.TileHMatrix`.  Entries live in two tiers:

* **disk** — one ``<fingerprint>.npz`` per factorization under the store
  directory, written with the v2 archive format (factor payloads + method +
  config), so factors survive restarts and can be shipped between replicas;
* **memory** — an LRU cache of loaded solvers under a configurable byte
  budget (``storage_bytes`` of each factorization, the same accounting the
  obs layer charges to ``h.bytes``), so hot fingerprints solve without
  touching disk and cold ones do not accumulate without bound.

A ``get`` that finds the fingerprint in either tier is a **hit** (the
expensive factorization is skipped); only a fingerprint absent from both is
a **miss**, and :meth:`FactorizationStore.get_or_build` then runs the
supplied builder exactly once — concurrent requests for the same missing
fingerprint wait on the first builder instead of factorizing redundantly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

import time

from ..core import TileHMatrix
from ..obs import current as obs_current
from ..obs.tracing import current_trace

__all__ = ["FactorizationStore"]


class _Entry:
    __slots__ = ("solver", "nbytes")

    def __init__(self, solver: TileHMatrix, nbytes: int) -> None:
        self.solver = solver
        self.nbytes = nbytes


class FactorizationStore:
    """Two-tier (memory LRU over disk) store of factorized Tile-H matrices.

    Parameters
    ----------
    root:
        Directory for the ``.npz`` archives (created on demand).  ``None``
        disables the disk tier — useful for pure in-memory serving/tests.
    budget_bytes:
        Byte budget of the in-memory tier.  Inserting past the budget evicts
        least-recently-used entries (disk copies are kept, so an evicted
        fingerprint is still a hit — just a slower one).  ``None`` means
        unbounded.
    mmap:
        Load disk-tier archives with ``mmap=True`` (zero-copy ``np.memmap``
        payloads, lazily paged, page cache shared across serving processes).
    compress:
        Compression of archives the store *writes*.  Defaults to ``not
        mmap`` — a store that maps archives writes them uncompressed so its
        own writes stay mappable.
    """

    def __init__(
        self,
        root=None,
        *,
        budget_bytes: int | None = None,
        mmap: bool = False,
        compress: bool | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.budget_bytes = budget_bytes
        self.mmap = mmap
        self.compress = compress if compress is not None else not mmap
        self._lock = threading.RLock()
        self._cache: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        # Per-key build locks: concurrent get_or_build on one missing key
        # runs the builder once, not once per caller.
        self._building: dict[str, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- paths ---------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        if self.root is None:
            raise ValueError("store has no disk tier (root=None)")
        return self.root / f"{key}.npz"

    # -- inspection ----------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._cache:
                return True
        return self.root is not None and self.path_for(key).exists()

    def keys(self) -> list[str]:
        """Every fingerprint available in either tier (sorted)."""
        with self._lock:
            out = set(self._cache)
        if self.root is not None and self.root.is_dir():
            out.update(p.stem for p in self.root.glob("*.npz"))
        return sorted(out)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._cache),
                "bytes": float(self._bytes),
                "budget_bytes": (
                    float(self.budget_bytes) if self.budget_bytes is not None else None
                ),
            }

    # -- core operations -------------------------------------------------------
    def put(self, key: str, solver: TileHMatrix, *, persist: bool = True) -> None:
        """Insert a factorized solver under ``key`` (memory, and disk when
        ``persist`` and the store has a disk tier)."""
        if persist and self.root is not None:
            solver.save(self.path_for(key), compress=self.compress)
        self._insert(key, solver)

    def get(self, key: str) -> TileHMatrix | None:
        """The solver for ``key``, or ``None`` (a recorded miss) when absent.

        Memory hits are O(1); disk hits load the archive and re-insert it
        into the memory tier (possibly evicting colder entries).
        """
        ctx = current_trace()
        t0 = time.perf_counter()
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                self._observe_lookup(True)
                if ctx is not None:
                    ctx.add_span("store-hit", t0, time.perf_counter(), tier="memory")
                return entry.solver
        if self.root is not None:
            path = self.path_for(key)
            if path.exists():
                solver = TileHMatrix.load(path, mmap=self.mmap)
                with self._lock:
                    self.hits += 1
                self._observe_lookup(True)
                self._insert(key, solver)
                if ctx is not None:
                    ctx.add_span("store-load", t0, time.perf_counter(), tier="disk")
                return solver
        with self._lock:
            self.misses += 1
        self._observe_lookup(False)
        if ctx is not None:
            ctx.add_span("store-miss", t0, time.perf_counter())
        return None

    def get_or_build(self, key: str, builder) -> TileHMatrix:
        """``get(key)``, running ``builder()`` on a miss and storing its result.

        Concurrent callers of one missing ``key`` serialize on a per-key
        build lock: the first runs ``builder``, the rest hit its result.
        """
        solver = self.get(key)
        if solver is not None:
            return solver
        with self._lock:
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            # Double-check: another thread may have built while we waited.
            with self._lock:
                entry = self._cache.get(key)
                if entry is not None:
                    self._cache.move_to_end(key)
                    return entry.solver
            ctx = current_trace()
            t0 = time.perf_counter()
            solver = builder()
            if ctx is not None:
                ctx.add_span("build", t0, time.perf_counter())
            if not solver.factorized:
                raise ValueError("builder must return a *factorized* solver")
            self.put(key, solver)
            if self.root is not None and self.mmap:
                # Serve from the archive, not the freshly built instance: a
                # memmap-backed solve can differ from the in-memory one in
                # the last ulp (BLAS picks alignment-dependent kernels), so
                # the archive is the canonical serving copy — every replica
                # that mmap-loads this key answers bit-identically to the
                # builder node.
                solver = TileHMatrix.load(self.path_for(key), mmap=True)
                self._insert(key, solver)
        with self._lock:
            self._building.pop(key, None)
        return solver

    def evict(self, key: str) -> bool:
        """Drop ``key`` from the memory tier (the disk copy, if any, stays)."""
        with self._lock:
            entry = self._cache.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry.nbytes
        self._observe_bytes(-entry.nbytes, evicted=True)
        return True

    def clear_memory(self) -> None:
        """Empty the memory tier (disk archives are untouched)."""
        with self._lock:
            keys = list(self._cache)
        for k in keys:
            self.evict(k)

    # -- internals -------------------------------------------------------------
    def _insert(self, key: str, solver: TileHMatrix) -> None:
        nbytes = int(solver.storage_bytes())
        evicted: list[tuple[str, int]] = []
        with self._lock:
            old = self._cache.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._cache[key] = _Entry(solver, nbytes)
            self._bytes += nbytes
            if self.budget_bytes is not None:
                # Evict cold entries, never the one just inserted: a single
                # over-budget factorization must still be servable.
                while self._bytes > self.budget_bytes and len(self._cache) > 1:
                    k, e = self._cache.popitem(last=False)
                    self._bytes -= e.nbytes
                    evicted.append((k, e.nbytes))
        delta = nbytes - (old.nbytes if old is not None else 0)
        if delta:
            self._observe_bytes(delta)
        for _, nb in evicted:
            self._observe_bytes(-nb, evicted=True)

    def _observe_lookup(self, hit: bool) -> None:
        probe = obs_current()
        if probe is not None:
            probe.store_lookup(hit)

    def _observe_bytes(self, delta: int, *, evicted: bool = False) -> None:
        if evicted:
            with self._lock:
                self.evictions += 1
        probe = obs_current()
        if probe is not None:
            probe.store_bytes_delta(delta)
            if evicted:
                probe.store_eviction()
