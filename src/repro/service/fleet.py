"""ServeFleet: sharded serving behind consistent-hash routing + SLO admission.

One :class:`~repro.service.pipeline.SolveService` is a single pipeline: one
admission counter, one batcher, one in-memory factor cache.  The fleet is the
next order of magnitude — the data-distribution discipline of
*Distributed-memory H-matrix Algebra I* (arXiv:2008.12441) applied to
serving: **partition by key, replicate hot state**.

Topology::

                            ┌────────────────────────────┐
     submit(spec, rhs,      │  admission (per-lane SLO)  │  QueueFullError /
            lane, timeout)──▶  interactive │ batch       │─ DeadlineUnmeetableError
                            └──────┬─────────────────────┘
                                   │ fingerprint
                            ┌──────▼─────────┐
                            │ consistent-hash│   hot keys: least-loaded
                            │     router     │   replica instead of primary
                            └──┬────┬────┬───┘
                          ┌────▼┐ ┌─▼──┐ ┌▼───┐
                          │ w0  │ │ w1 │ │ w2 │   one SolveService each
                          │ LRU │ │ LRU│ │ LRU│   (own batcher + memory tier)
                          └──┬──┘ └─┬──┘ └─┬──┘
                             └──────┼──────┘
                             shared on-disk FactorizationStore tier

* **Routing** is a consistent-hash ring over the problem *fingerprint* with
  virtual nodes: deterministic, balanced (max/min keys per worker stays
  within ~2x at 4 workers over 1k keys), and stable under resize — removing
  a worker only re-homes that worker's keys.
* **Storage** is two-tier per worker: every worker shares one on-disk
  archive directory (``store_root``) but owns a private LRU memory tier, so
  a fingerprint is factorized once fleet-wide (first worker persists it;
  any other worker's cold request is a disk hit, zero-copy via ``mmap``).
* **Warm replication**: once a fingerprint has been requested
  ``replicate_hot_after`` times, its archive is mmap-loaded into the memory
  tiers of the next workers on the ring and subsequent requests for it go to
  the least-loaded replica — hot keys stop serializing on one worker.
* **SLO-aware admission** replaces the single bounded queue: each *lane*
  (``interactive``/``batch`` by default) has its own in-flight budget — a
  saturated batch lane can never starve interactive traffic — and
  deadline-based shedding: a request whose deadline is closer than the
  lane's observed (EWMA) service time is rejected up front with
  :class:`~repro.service.errors.DeadlineUnmeetableError` instead of burning
  a solve on an answer the caller will never use.
* **Crash recovery**: a failed worker is removed from the ring and its
  queued requests are re-dispatched to the surviving workers (at-least-once
  execution; solves are pure, so replays are safe).  Only when re-dispatch
  is exhausted does a caller see
  :class:`~repro.service.errors.WorkerCrashedError`.

The fleet never changes bits: every worker builds or loads the same
content-addressed factorization, and panel solves are column-stable, so a
fleet solve is bit-identical to a single-service solve of the same request.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from collections import deque
from contextlib import nullcontext as _null_ctx
from dataclasses import dataclass

import numpy as np

from ..obs import current as obs_current
from ..obs.exposition import SlidingWindow
from .errors import (
    BadRequestError,
    DeadlineExceededError,
    DeadlineUnmeetableError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    WorkerCrashedError,
)
from .pipeline import SolveService, SolveTicket
from .problems import ProblemSpec, check_rhs, spec_fingerprint
from .store import FactorizationStore

__all__ = ["ConsistentHashRouter", "LaneConfig", "ServeFleet", "FleetTicket"]

#: Exact per-lane latencies kept for percentile reporting.
_RESERVOIR = 4096


def _ring_point(label: str) -> int:
    """Position of ``label`` on the 64-bit hash ring (sha256-derived)."""
    return int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")


class ConsistentHashRouter:
    """Consistent-hash ring: stable, balanced key -> node assignment.

    Each node owns ``vnodes`` points on a 64-bit ring; a key routes to the
    first node point at or after the key's own hash (wrapping).  Properties
    the fleet leans on:

    * deterministic — same nodes, same key, same answer, in any process;
    * balanced — with enough virtual nodes the arc lengths even out
      (128 vnodes keeps max/min keys per node near 1.5x at 4 nodes);
    * minimal disruption — adding a node steals ~K/(N+1) keys from the
      others; removing one re-homes only *its* keys.  Everything else
      stays put, which is what keeps worker memory tiers warm across
      fleet resizes.
    """

    def __init__(self, nodes=(), *, vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[str] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = _ring_point(f"{node}#{v}")
            i = bisect.bisect(self._points, point)
            self._points.insert(i, point)
            self._owners.insert(i, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def route(self, key: str) -> str:
        """The node owning ``key`` (first ring point clockwise of its hash)."""
        if not self._points:
            raise ValueError("ring is empty")
        i = bisect.bisect(self._points, _ring_point(key)) % len(self._points)
        return self._owners[i]

    def preference(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* nodes clockwise of ``key`` — the
        replica placement order (primary first)."""
        if not self._points:
            raise ValueError("ring is empty")
        out: list[str] = []
        start = bisect.bisect(self._points, _ring_point(key))
        for d in range(len(self._points)):
            owner = self._owners[(start + d) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) >= count:
                    break
        return out


@dataclass(frozen=True)
class LaneConfig:
    """One admission lane of the fleet.

    ``max_inflight`` is the lane's private budget — lanes never contend for
    slots, which is the starvation guarantee.  ``default_timeout`` applies
    when a request names no deadline.  ``shed_margin`` scales the estimated
    service time in the shed test: a request is shed when
    ``now + shed_margin * estimate > deadline`` (raise it to shed earlier,
    e.g. 1.2 to keep 20% headroom).  ``slo_seconds`` is the lane's latency
    objective: completions are scored against it (attainment + EWMA
    burn-rate gauge — sheds and rejections burn budget too, so admission
    control is visible in the same signal), ``None`` disables SLO tracking.
    """

    name: str
    max_inflight: int = 64
    default_timeout: float | None = None
    shed_margin: float = 1.0
    slo_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.shed_margin <= 0:
            raise ValueError(f"shed_margin must be > 0, got {self.shed_margin}")
        if self.slo_seconds is not None and self.slo_seconds <= 0:
            raise ValueError(f"slo_seconds must be > 0, got {self.slo_seconds}")


DEFAULT_LANES = (
    LaneConfig("interactive", max_inflight=64),
    LaneConfig("batch", max_inflight=256),
)

#: EWMA weight of the newest service-time sample.
_EWMA_ALPHA = 0.2


class _LaneState:
    """Counters + service-time estimator of one lane (fleet lock guards it)."""

    __slots__ = (
        "config", "inflight", "inflight_peak", "admitted", "completed",
        "failed", "expired", "shed", "rejected", "estimate", "reservoir",
        "window", "slo_good", "slo_violations", "burn_rate",
    )

    def __init__(self, config: LaneConfig, clock=time.monotonic) -> None:
        self.config = config
        self.inflight = 0
        self.inflight_peak = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.expired = 0
        self.shed = 0
        self.rejected = 0
        self.estimate: float | None = None  # EWMA of observed service time
        self.reservoir: deque = deque(maxlen=_RESERVOIR)
        self.window = SlidingWindow(clock=clock)
        # SLO scoreboard: every terminal outcome is either within the
        # objective ("good") or burns error budget; the burn rate is an EWMA
        # of the violation indicator, so 0.0 = healthy, 1.0 = every recent
        # outcome violating.
        self.slo_good = 0
        self.slo_violations = 0
        self.burn_rate = 0.0

    def _score_slo(self, violated: bool) -> None:
        if self.config.slo_seconds is None:
            return
        if violated:
            self.slo_violations += 1
        else:
            self.slo_good += 1
        self.burn_rate += _EWMA_ALPHA * ((1.0 if violated else 0.0) - self.burn_rate)

    def observe(self, latency: float, now: float | None = None) -> None:
        self.reservoir.append(latency)
        self.window.observe(latency, now)
        if self.estimate is None:
            self.estimate = latency
        else:
            self.estimate += _EWMA_ALPHA * (latency - self.estimate)
        self._score_slo(
            self.config.slo_seconds is not None and latency > self.config.slo_seconds
        )

    def note_denied(self) -> None:
        """A shed/rejection burns SLO budget — denied callers got no answer."""
        self._score_slo(True)

    def slo_stats(self) -> dict | None:
        if self.config.slo_seconds is None:
            return None
        scored = self.slo_good + self.slo_violations
        return {
            "target_seconds": self.config.slo_seconds,
            "good": self.slo_good,
            "violations": self.slo_violations,
            "attainment": self.slo_good / scored if scored else 1.0,
            "burn_rate": self.burn_rate,
        }

    def stats(self) -> dict:
        out = {
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "expired": self.expired,
            "shed": self.shed,
            "rejected": self.rejected,
            "inflight": self.inflight,
            "inflight_peak": self.inflight_peak,
            "max_inflight": self.config.max_inflight,
            "est_service_seconds": self.estimate if self.estimate is not None else 0.0,
        }
        sample = sorted(self.reservoir)
        if sample:
            out["p50_ms"] = sample[int(0.50 * (len(sample) - 1))] * 1e3
            out["p95_ms"] = sample[int(0.95 * (len(sample) - 1))] * 1e3
            out["p99_ms"] = sample[int(0.99 * (len(sample) - 1))] * 1e3
        slo = self.slo_stats()
        if slo is not None:
            out["slo"] = slo
        return out


class FleetTicket(SolveTicket):
    """A :class:`SolveTicket` that also remembers its lane."""

    __slots__ = ("lane",)

    def __init__(self, key: str, submitted_at: float, lane: str) -> None:
        super().__init__(key, submitted_at)
        self.lane = lane


class _FleetRequest:
    __slots__ = ("spec", "rhs", "deadline", "lane", "ticket", "attempts", "trace")

    def __init__(self, spec, rhs, deadline, lane, ticket) -> None:
        self.spec = spec
        self.rhs = rhs
        self.deadline = deadline
        self.lane = lane
        self.ticket = ticket
        self.attempts = 0
        self.trace = None  # TraceContext opened at admission (or None)


class _FleetWorker:
    __slots__ = ("index", "name", "store", "service", "pending", "healthy")

    def __init__(self, index: int, name: str, store, service) -> None:
        self.index = index
        self.name = name
        self.store = store
        self.service = service
        #: In-flight fleet requests currently homed on this worker (dict as
        #: an ordered set; fleet lock guards it).
        self.pending: dict[_FleetRequest, None] = {}
        self.healthy = True


class ServeFleet:
    """N sharded :class:`SolveService` workers behind one admission front.

    Parameters
    ----------
    workers:
        Fleet width: each worker is a full :class:`SolveService` (own
        micro-batcher, own worker threads, own LRU memory tier).
    store_root:
        Shared on-disk archive directory (the fleet-wide persistence tier).
        ``None`` serves purely in-memory — replication is then off, since
        there is no archive to warm a replica from.
    budget_bytes:
        Per-worker memory-tier budget (each worker gets the full amount).
    mmap:
        Load archives zero-copy (``np.memmap``); the page cache is shared
        across workers, which is what makes warm replication cheap.
    lanes:
        Iterable of :class:`LaneConfig`; defaults to an ``interactive`` and
        a ``batch`` lane.
    replicate_hot_after:
        Requests to one fingerprint before its archive is warm-loaded into
        ``replicas``-many workers (``None`` disables).
    replicas:
        Total copies of a hot fingerprint (primary included).
    max_requeues:
        Re-dispatch attempts for a request orphaned by a worker crash.
    service_threads / max_queue / max_batch / max_delay / max_retries /
    exec_mode / exec_workers / solver_provider:
        Forwarded to each worker's :class:`SolveService`.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        store_root=None,
        budget_bytes: int | None = None,
        mmap: bool = True,
        lanes=DEFAULT_LANES,
        replicate_hot_after: int | None = 16,
        replicas: int = 2,
        max_requeues: int = 2,
        vnodes: int = 128,
        service_threads: int = 1,
        max_queue: int = 64,
        max_batch: int = 8,
        max_delay: float = 0.002,
        max_retries: int = 2,
        exec_mode: str = "eager",
        exec_workers: int | None = None,
        solver_provider=None,
        clock=time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if replicate_hot_after is not None and replicate_hot_after < 1:
            raise ValueError(
                f"replicate_hot_after must be >= 1, got {replicate_hot_after}"
            )
        lane_list = list(lanes)
        if not lane_list:
            raise ValueError("fleet needs at least one lane")
        self._clock = clock
        self._lock = threading.Lock()
        self._closed = False
        self._lanes = {cfg.name: _LaneState(cfg, clock) for cfg in lane_list}
        if len(self._lanes) != len(lane_list):
            raise ValueError("duplicate lane names")
        self.store_root = store_root
        self.replicate_hot_after = replicate_hot_after if store_root is not None else None
        self.replicas = replicas
        self.max_requeues = max_requeues
        self._router = ConsistentHashRouter(vnodes=vnodes)
        self._workers: list[_FleetWorker] = []
        self._by_name: dict[str, _FleetWorker] = {}
        for i in range(workers):
            store = FactorizationStore(
                store_root, budget_bytes=budget_bytes, mmap=mmap
            ) if store_root is not None else FactorizationStore(budget_bytes=budget_bytes)
            service = SolveService(
                store,
                workers=service_threads,
                max_queue=max_queue,
                max_batch=max_batch,
                max_delay=max_delay,
                max_retries=max_retries,
                solver_provider=solver_provider,
                exec_mode=exec_mode,
                exec_workers=exec_workers,
                clock=clock,
                name=f"w{i}",
            )
            w = _FleetWorker(i, f"w{i}", store, service)
            self._workers.append(w)
            self._by_name[w.name] = w
            self._router.add(w.name)
        # Fingerprint -> request count (hot tracking) and replica homes.
        self._key_counts: dict[str, int] = {}
        self._replica_homes: dict[str, list[str]] = {}
        self._replicated_loads = 0
        self._requeues = 0
        self._failed_workers = 0

    # -- introspection ---------------------------------------------------------
    @property
    def lanes(self) -> dict[str, LaneConfig]:
        return {name: st.config for name, st in self._lanes.items()}

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def healthy_workers(self) -> list[int]:
        with self._lock:
            return [w.index for w in self._workers if w.healthy]

    def worker_for(self, key: str) -> int:
        """Index of the worker a (non-replicated) key routes to."""
        with self._lock:
            return self._by_name[self._router.route(key)].index

    def keys(self) -> list[str]:
        """Every fingerprint available anywhere in the fleet (sorted union)."""
        out: set[str] = set()
        for w in self._workers:
            out.update(w.store.keys())
        return sorted(out)

    def queue_depth(self) -> int:
        return sum(w.service.queue_depth() for w in self._workers)

    # -- admission -------------------------------------------------------------
    def submit(self, spec, rhs, *, lane: str = "interactive",
               timeout: float | None = None) -> FleetTicket:
        """Admit one request into ``lane``; returns a :class:`FleetTicket`.

        Synchronous typed rejections, in the order they are checked:
        :class:`BadRequestError` (malformed spec/rhs/lane),
        :class:`ServiceClosedError` (fleet closed), :class:`QueueFullError`
        (lane budget exhausted), :class:`DeadlineUnmeetableError` (the
        lane's observed service time says the deadline cannot be met).
        """
        if not isinstance(spec, ProblemSpec):
            spec = ProblemSpec.from_dict(spec)
        rhs = check_rhs(spec, rhs)
        state = self._lanes.get(lane)
        if state is None:
            raise BadRequestError(
                f"unknown lane {lane!r}; choose from {sorted(self._lanes)}"
            )
        key = spec_fingerprint(spec)
        now = self._clock()
        if timeout is None:
            timeout = state.config.default_timeout
        deadline = None if timeout is None else now + timeout
        with self._lock:
            if self._closed:
                raise ServiceClosedError("fleet is shutting down; request rejected")
            if state.inflight >= state.config.max_inflight:
                state.rejected += 1
                state.note_denied()
                raise QueueFullError(
                    f"lane {lane!r} at capacity "
                    f"({state.inflight}/{state.config.max_inflight}); retry later"
                )
            if (
                deadline is not None
                and state.estimate is not None
                and now + state.config.shed_margin * state.estimate > deadline
            ):
                state.shed += 1
                state.note_denied()
                raise DeadlineUnmeetableError(
                    f"deadline in {deadline - now:.3f}s but lane {lane!r} "
                    f"currently serves in ~{state.estimate:.3f}s; shed at admission"
                )
            state.inflight += 1
            state.admitted += 1
            if state.inflight > state.inflight_peak:
                state.inflight_peak = state.inflight
            count = self._key_counts.get(key, 0) + 1
            self._key_counts[key] = count
        ticket = FleetTicket(key, now, lane)
        request = _FleetRequest(spec, rhs, deadline, lane, ticket)
        probe = obs_current()
        if probe is not None:
            request.trace = probe.tracer.start(key, lane=lane)
        try:
            self._dispatch(request)
        except ServiceError as exc:
            with self._lock:
                state.inflight -= 1
                state.admitted -= 1
                state.rejected += 1
                state.note_denied()
            if request.trace is not None:
                request.trace.finish(getattr(exc, "code", type(exc).__name__))
            raise exc
        if (
            self.replicate_hot_after is not None
            and count == self.replicate_hot_after
            and self.replicas > 1
        ):
            threading.Thread(
                target=self._replicate, args=(key,), daemon=True,
                name=f"fleet-replicate-{key[:8]}",
            ).start()
        return ticket

    def solve(self, spec, rhs, *, lane: str = "interactive",
              timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience: :meth:`submit` and wait for the result."""
        return self.submit(spec, rhs, lane=lane, timeout=timeout).result()

    # -- routing + dispatch ----------------------------------------------------
    def _choose_worker(self, key: str) -> _FleetWorker:
        """Primary by ring position; hot keys go to the least-loaded healthy
        replica (the primary competes too)."""
        with self._lock:
            homes = self._replica_homes.get(key)
            if homes:
                candidates = [
                    self._by_name[name]
                    for name in homes
                    if name in self._by_name and self._by_name[name].healthy
                ]
                if candidates:
                    return min(candidates, key=lambda w: w.service.queue_depth())
            if not len(self._router):
                raise WorkerCrashedError("no healthy fleet workers remain")
            return self._by_name[self._router.route(key)]

    def _dispatch(self, request: _FleetRequest) -> None:
        ctx = request.trace
        t_r0 = time.perf_counter()
        w = self._choose_worker(request.ticket.key)
        if ctx is not None:
            # First placement is a "route"; any re-placement after a crash
            # or mid-dispatch drain is a "rehome".
            ctx.add_span(
                "rehome" if request.attempts else "route",
                t_r0, time.perf_counter(),
                shard=w.name, attempt=request.attempts,
            )
        now = self._clock()
        remaining = None
        if request.deadline is not None:
            remaining = max(0.0, request.deadline - now)
        with self._lock:
            w.pending[request] = None
        try:
            # Activate the trace so the shard's pipeline adopts it (the
            # queue-wait/batch-wait/solve spans land on this request).
            with ctx.activate() if ctx is not None else _null_ctx():
                inner = w.service.submit(request.spec, request.rhs, timeout=remaining)
        except ServiceClosedError:
            # The worker drained underneath us: treat as a crash, re-home
            # its keys, and retry this request on the survivors.
            with self._lock:
                w.pending.pop(request, None)
            self.fail_worker(w.index)
            if request.attempts < self.max_requeues:
                request.attempts += 1
                with self._lock:
                    self._requeues += 1
                self._dispatch(request)
                return
            raise WorkerCrashedError(
                f"worker {w.name} closed mid-dispatch and requeues are exhausted"
            ) from None
        except ServiceError:
            with self._lock:
                w.pending.pop(request, None)
            raise
        inner.add_done_callback(
            lambda t, request=request, w=w: self._inner_done(request, w, t)
        )

    def _inner_done(self, request: _FleetRequest, w: _FleetWorker, inner) -> None:
        with self._lock:
            if request not in w.pending:
                # Stale resolution: fail_worker() already re-homed this
                # request off ``w``; the re-dispatched copy is authoritative.
                return
            del w.pending[request]
        self._finalize(request, result=inner._result, error=inner._error)

    def _finalize(self, request: _FleetRequest, *, result=None, error=None) -> None:
        now = self._clock()
        state = self._lanes[request.lane]
        slo = None
        with self._lock:
            if request.ticket.done():
                return
            state.inflight -= 1
            if error is None:
                state.completed += 1
                state.observe(now - request.ticket.submitted_at, now)
            else:
                state.failed += 1
                if isinstance(error, DeadlineExceededError):
                    state.expired += 1
                state._score_slo(True)
            slo = state.slo_stats()
        probe = obs_current()
        if probe is not None and slo is not None:
            probe.fleet_lane_slo(request.lane, slo["attainment"], slo["burn_rate"])
        if request.trace is not None:
            request.trace.finish(
                "ok" if error is None else getattr(error, "code", type(error).__name__)
            )
        request.ticket._resolve(result=result, error=error, t=now)

    # -- failure handling ------------------------------------------------------
    def fail_worker(self, index: int) -> None:
        """Remove a (crashed) worker from the ring and re-home its queued
        requests onto the survivors — no admitted request is lost.

        Idempotent.  The dead worker's service is drained in the background;
        any results it still produces are discarded (the re-homed copy is
        authoritative).  Solves are pure functions of (fingerprint, rhs), so
        the at-least-once replay cannot change any bits.
        """
        with self._lock:
            w = self._workers[index]
            if not w.healthy:
                return
            w.healthy = False
            self._failed_workers += 1
            self._router.remove(w.name)
            self._by_name.pop(w.name, None)
            # Hot-key homes pointing at the dead worker are stale; drop them
            # (the ring reroutes, and replication can re-trigger later).
            for key, homes in list(self._replica_homes.items()):
                if w.name in homes:
                    homes.remove(w.name)
                    if not homes:
                        del self._replica_homes[key]
            orphans = [r for r in w.pending if not r.ticket.done()]
            w.pending.clear()
        threading.Thread(
            target=w.service.close, daemon=True, name=f"fleet-drain-{w.name}"
        ).start()
        for r in orphans:
            r.attempts += 1
            if r.attempts > self.max_requeues:
                self._finalize(r, error=WorkerCrashedError(
                    f"worker {w.name} crashed and requeues are exhausted"
                ))
                continue
            with self._lock:
                self._requeues += 1
            try:
                self._dispatch(r)
            except ServiceError as exc:
                self._finalize(r, error=exc)

    # -- replication -----------------------------------------------------------
    def _replicate(self, key: str) -> None:
        """Warm-load a hot fingerprint's archive into the next workers on the
        ring (mmap: the copies share page-cache pages with the primary)."""
        with self._lock:
            if self._closed or not len(self._router):
                return
            names = self._router.preference(key, min(self.replicas, len(self._router)))
        homes: list[str] = []
        loaded = 0
        for name in names:
            w = self._by_name.get(name)
            if w is None or not w.healthy:
                continue
            try:
                if w.store.get(key) is not None:
                    homes.append(name)
                    loaded += 1
            except Exception:
                continue  # a racing eviction/unlink; replication is best-effort
        if len(homes) > 1:
            with self._lock:
                self._replica_homes[key] = homes
                self._replicated_loads += loaded

    # -- shutdown --------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Graceful drain of every worker.  Idempotent."""
        with self._lock:
            self._closed = True
            workers = [w for w in self._workers if w.healthy]
        deadline = None if timeout is None else time.monotonic() + timeout
        for w in workers:
            w.service.close(
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )

    def __enter__(self) -> "ServeFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting -------------------------------------------------------------
    def stats(self) -> dict:
        """The ``fleet`` section of a run report (schema-valid): lane
        counters + latency percentiles, routing balance, replication."""
        with self._lock:
            lanes = {name: st.stats() for name, st in self._lanes.items()}
            per_worker = {w.name: 0 for w in self._workers if w.healthy}
            for key in self._key_counts:
                try:
                    per_worker[self._router.route(key)] += 1
                except (ValueError, KeyError):
                    pass
            replication = {
                "hot_keys": len(self._replica_homes),
                "replicated_loads": self._replicated_loads,
                "hot_after": (
                    self.replicate_hot_after
                    if self.replicate_hot_after is not None
                    else 0
                ),
            }
            requeues = self._requeues
            failed = self._failed_workers
            healthy = sum(1 for w in self._workers if w.healthy)
        counts = [c for c in per_worker.values()]
        balance = 0.0
        if counts and min(counts) > 0:
            balance = max(counts) / min(counts)
        return {
            "workers": len(self._workers),
            "healthy_workers": healthy,
            "failed_workers": failed,
            "lanes": lanes,
            "routing": {
                "keys": len(self._key_counts),
                "per_worker": per_worker,
                "balance_ratio": balance,
            },
            "replication": replication,
            "requeues": requeues,
        }

    def lane_windows(self) -> dict:
        """Rolling-window latency summary per lane (the ``GET /metrics``
        per-lane histograms), with live inflight and SLO health attached."""
        now = self._clock()
        out: dict[str, dict] = {}
        with self._lock:
            states = list(self._lanes.items())
        for name, st in states:
            snap = st.window.snapshot(now)
            with self._lock:
                snap["inflight"] = st.inflight
                snap["shed"] = st.shed
                snap["rejected"] = st.rejected
                slo = st.slo_stats()
            if slo is not None:
                snap["slo"] = slo
            out[name] = snap
        return out

    def worker_stats(self) -> list[dict]:
        """Each worker's full :meth:`SolveService.stats` (debugging/ops)."""
        return [w.service.stats() for w in self._workers]
