"""MicroBatcher: coalesce concurrent solves into multi-RHS panel sweeps.

The paper's economics (and the H-Chameleon vs HMAT overhead gap of its
Sec. V) say a triangular solve is cheap *per column* but carries a fixed
per-sweep overhead: the tile loop, the leaf walks, the Python dispatch.  A
panel of k right-hand sides pays that overhead once, so k concurrent
requests against the same factorization should ride one sweep.  The batcher
implements exactly that: items are bucketed by fingerprint, and a bucket is
dispatched when it reaches ``max_batch`` columns or its oldest item has
waited ``max_delay`` seconds — bounded extra latency in exchange for
amortization.  Batch composition never changes the answer: the panel solve
is column-stable (see :func:`~repro.hmatrix.arithmetic.panel_matvec`), so a
request's solution is bit-identical whether it rode alone or in a batch of
16.

The batcher is a passive, thread-safe data structure: producers ``add``,
consumers (the pipeline's workers) ``take``; it never spawns threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = ["MicroBatcher"]


class _Bucket:
    __slots__ = ("items", "oldest")

    def __init__(self, now: float) -> None:
        self.items: list = []
        self.oldest = now


class MicroBatcher:
    """Group items by key into (key, [items]) batches of bounded size/age.

    Parameters
    ----------
    max_batch:
        Dispatch a bucket as soon as it holds this many items (also the
        panel width cap of the downstream multi-RHS solve).
    max_delay:
        Dispatch a non-empty bucket once its *oldest* item has waited this
        long, even if under-full.  ``0`` degenerates to one-item batches
        (no coalescing latency, no amortization).
    clock:
        Injectable time source (tests pass a virtual clock).
    shed / on_shed:
        Batch-formation-time shedding.  ``shed(item, now)`` marks an item
        dead (e.g. its deadline already passed); dead items are removed
        *while the batch is formed* — before they can occupy one of the
        ``max_batch`` panel slots — and handed to ``on_shed(key, item)`` so
        the owner can resolve them with a typed error.  Without this, an
        expired request still consumes a batch slot and a live straggler is
        pushed into the next sweep.  ``on_shed`` runs under the batcher lock
        and must not call back into the batcher.
    on_batch:
        Formation observer: ``on_batch(key, items, waited)`` fires when a
        batch is cut, with ``waited`` the seconds the bucket's *oldest* item
        spent coalescing — the batch-wait phase of the request traces.  Runs
        under the batcher lock; must not call back into the batcher.
    """

    def __init__(self, *, max_batch: int = 8, max_delay: float = 0.002,
                 clock=time.monotonic, shed=None, on_shed=None, on_batch=None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if shed is not None and on_shed is None:
            raise ValueError("shed without on_shed would drop items silently")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._shed = shed
        self._on_shed = on_shed
        self._on_batch = on_batch
        self._clock = clock
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._buckets: "OrderedDict[str, _Bucket]" = OrderedDict()
        self._count = 0
        self._draining = False

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def add(self, key: str, item) -> None:
        """Queue ``item`` under ``key`` and wake a waiting consumer."""
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = _Bucket(self._clock())
            bucket.items.append(item)
            self._count += 1
            self._ready.notify()

    def drain(self) -> None:
        """Flush mode: every non-empty bucket is immediately takeable and
        blocked ``take`` calls return (with a final batch or ``None``)."""
        with self._lock:
            self._draining = True
            self._ready.notify_all()

    def _pop_ready_locked(self, now: float) -> tuple[str, list] | None:
        """The first dispatchable bucket under the size/age/drain rules.

        Dead items (``shed``) are dropped at formation time: the batch is
        cut from the *live* items only, so a panel is never padded with
        requests that already missed their deadline.  A bucket that turns
        out to be all-dead is discarded and the scan continues.
        """
        for key, bucket in list(self._buckets.items()):
            if not (
                len(bucket.items) >= self.max_batch
                or self._draining
                or now - bucket.oldest >= self.max_delay
            ):
                continue
            live = bucket.items
            if self._shed is not None:
                live = []
                for item in bucket.items:
                    if self._shed(item, now):
                        self._count -= 1
                        self._on_shed(key, item)
                    else:
                        live.append(item)
            items = live[: self.max_batch]
            rest = live[self.max_batch:]
            if rest:
                nb = _Bucket(now)
                nb.items = rest
                self._buckets[key] = nb
                self._buckets.move_to_end(key)
            else:
                del self._buckets[key]
            if not items:
                continue  # everything in the bucket had expired
            self._count -= len(items)
            if self._on_batch is not None:
                self._on_batch(key, items, max(0.0, now - bucket.oldest))
            return key, items
        return None

    def _next_deadline_locked(self, now: float) -> float | None:
        """Seconds until the oldest bucket matures, or None when empty."""
        if not self._buckets:
            return None
        oldest = min(b.oldest for b in self._buckets.values())
        return max(0.0, self.max_delay - (now - oldest))

    def take(self, timeout: float | None = None) -> tuple[str, list] | None:
        """Block for the next ``(key, items)`` batch.

        Returns ``None`` when ``timeout`` elapses with nothing dispatchable,
        or immediately when draining and empty.  An under-full bucket is
        held back until ``max_delay`` so stragglers can join; a full bucket
        is handed out at once.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while True:
                now = self._clock()
                batch = self._pop_ready_locked(now)
                if batch is not None:
                    return batch
                if self._draining and self._count == 0:
                    return None
                waits = [
                    w for w in (
                        self._next_deadline_locked(now),
                        None if deadline is None else deadline - now,
                    )
                    if w is not None
                ]
                if deadline is not None and deadline - now <= 0:
                    return None
                self._ready.wait(timeout=min(waits) if waits else None)
