"""Stdlib HTTP endpoint + client for the solve service.

A thin JSON boundary over :class:`~repro.service.pipeline.SolveService`:
``http.server.ThreadingHTTPServer`` on the serving side (one handler thread
per connection, all funnelling into the service's bounded admission queue),
``urllib.request`` on the client side — no third-party dependencies.

Routes::

    POST /v1/solve     {"problem": {...}, "rhs": [...], "timeout"?: s}
                       -> {"key", "latency_seconds", "solution"}
    GET  /v1/healthz   -> {"status": "ok"|"draining"}
    GET  /v1/stats     -> the service stats dict (report `service` section)
    GET  /v1/keys      -> {"keys": [fingerprints...]}
    GET  /metrics      -> Prometheus text exposition (counters, gauges,
                          histogram summaries, rolling per-lane latency
                          quantiles, SLO attainment/burn gauges)
    GET  /tracez       -> recent request traces (JSON); ``?trace_id=`` looks
                          one up, ``?limit=N`` bounds the listing
    POST /v1/shutdown  -> {"status": "draining"}   (drain starts in background)

Typed service errors travel as ``{"error": {"code", "message"}}`` with the
error's ``http_status``; the client re-raises them as the same exception
classes, so ``QueueFullError`` backpressure is visible end-to-end.

Complex vectors (helmholtz) are encoded entrywise as ``[re, im]`` pairs.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..obs import current as obs_current
from ..obs.exposition import metrics_text, tracez_payload
from .errors import (
    BadRequestError,
    DeadlineExceededError,
    DeadlineUnmeetableError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    TransientSolveError,
    WorkerCrashedError,
)
from .fleet import ServeFleet
from .pipeline import SolveService

__all__ = ["encode_vector", "decode_vector", "make_server", "SolveClient"]

_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        ServiceError,
        BadRequestError,
        QueueFullError,
        DeadlineExceededError,
        DeadlineUnmeetableError,
        ServiceClosedError,
        TransientSolveError,
        WorkerCrashedError,
    )
}

#: Request body size cap — a solve payload is one vector, not a matrix.
_MAX_BODY = 64 * 1024 * 1024


def encode_vector(x: np.ndarray) -> list:
    """JSON-able form of a solution/rhs vector (``[re, im]`` pairs if complex)."""
    x = np.asarray(x)
    if np.iscomplexobj(x):
        return [[float(v.real), float(v.imag)] for v in x]
    return [float(v) for v in x]


def decode_vector(data) -> np.ndarray:
    """Inverse of :func:`encode_vector`; rejects malformed payloads."""
    if not isinstance(data, list) or not data:
        raise BadRequestError("rhs must be a non-empty JSON array")
    first = data[0]
    if isinstance(first, list):
        try:
            return np.array([complex(v[0], v[1]) for v in data], dtype=np.complex128)
        except (TypeError, IndexError) as exc:
            raise BadRequestError(f"malformed complex rhs entry: {exc}") from exc
    try:
        return np.array([float(v) for v in data], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"malformed rhs entry: {exc}") from exc


class _Handler(BaseHTTPRequestHandler):
    service: SolveService | ServeFleet  # bound by make_server
    server_version = "repro-solve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # quiet by default; obs covers metrics
        pass

    # -- plumbing -------------------------------------------------------------
    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, exc: ServiceError) -> None:
        self._reply(exc.http_status, {"error": {"code": exc.code, "message": str(exc)}})

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequestError("request body required")
        if length > _MAX_BODY:
            raise BadRequestError(f"request body too large ({length} bytes)")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise BadRequestError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    # -- routes ---------------------------------------------------------------
    def do_GET(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/v1/healthz":
            self._reply(200, {"status": "draining" if self.service.closed else "ok"})
        elif parsed.path == "/v1/stats":
            self._reply(200, self.service.stats())
        elif parsed.path == "/v1/keys":
            self._reply(200, {"keys": self.service.keys()})
        elif parsed.path == "/metrics":
            self._reply_text(
                200,
                metrics_text(service=self.service),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif parsed.path == "/tracez":
            query = urllib.parse.parse_qs(parsed.query)
            trace_id = query.get("trace_id", [None])[0]
            try:
                limit = int(query.get("limit", ["20"])[0])
            except ValueError:
                self._reply(400, {"error": {"code": "bad_request",
                                            "message": "limit must be an integer"}})
                return
            # Always 200: a missing trace_id is reported in-band via
            # ``"found": false`` so clients get the tracer state either way.
            self._reply(200, tracez_payload(
                obs_current(), service=self.service,
                trace_id=trace_id, limit=limit,
            ))
        else:
            self._reply(404, {"error": {"code": "not_found", "message": self.path}})

    def do_POST(self) -> None:
        try:
            if self.path == "/v1/solve":
                self._solve()
            elif self.path == "/v1/shutdown":
                # Drain in the background: this handler thread must not join
                # workers while holding the connection open.
                threading.Thread(target=self.service.close, daemon=True).start()
                self._reply(200, {"status": "draining"})
            else:
                self._reply(404, {"error": {"code": "not_found", "message": self.path}})
        except ServiceError as exc:
            self._reply_error(exc)
        except Exception as exc:  # noqa: BLE001 - boundary: never drop the reply
            self._reply(500, {"error": {"code": "internal", "message": str(exc)}})

    def _solve(self) -> None:
        payload = self._read_json()
        problem = payload.get("problem")
        if problem is None:
            raise BadRequestError("missing 'problem' object")
        rhs = decode_vector(payload.get("rhs"))
        timeout = payload.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or isinstance(timeout, bool) or timeout <= 0
        ):
            raise BadRequestError(f"timeout must be a positive number, got {timeout!r}")
        kwargs = {"timeout": timeout}
        lane = payload.get("lane")
        if lane is not None:
            if not isinstance(lane, str):
                raise BadRequestError(f"lane must be a string, got {lane!r}")
            if not isinstance(self.service, ServeFleet):
                raise BadRequestError(
                    "this server runs a single service; 'lane' needs a fleet "
                    "(repro serve --fleet N)"
                )
            kwargs["lane"] = lane
        ticket = self.service.submit(problem, rhs, **kwargs)
        x = ticket.result()
        self._reply(
            200,
            {
                "key": ticket.key,
                "latency_seconds": ticket.finished_at - ticket.submitted_at,
                "solution": encode_vector(x),
            },
        )


def make_server(service: SolveService | ServeFleet, host: str = "127.0.0.1", port: int = 0):
    """A ready-to-run ``ThreadingHTTPServer`` bound to ``service`` (a single
    :class:`SolveService` or a :class:`~repro.service.fleet.ServeFleet` —
    the routes are identical; a fleet additionally accepts ``"lane"`` in the
    solve payload and reports fleet-shaped ``/v1/stats``).

    ``port=0`` picks a free port (read it back from ``server.server_address``).
    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``service.close()`` to stop.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


class SolveClient:
    """Minimal urllib client speaking the endpoint's JSON protocol.

    Server-side typed errors are re-raised as the same
    :mod:`repro.service.errors` classes (matched on the wire ``code``), so a
    remote ``QueueFullError`` is catchable exactly like a local one.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        req = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=None if payload is None else json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                err = json.loads(exc.read()).get("error", {})
            except Exception:
                err = {}
            cls = _ERROR_TYPES.get(err.get("code"), ServiceError)
            raise cls(err.get("message", f"HTTP {exc.code}")) from None

    def solve(
        self, problem: dict, rhs, *, timeout: float | None = None,
        lane: str | None = None,
    ) -> np.ndarray:
        payload = {"problem": problem, "rhs": encode_vector(np.asarray(rhs))}
        if timeout is not None:
            payload["timeout"] = timeout
        if lane is not None:
            payload["lane"] = lane
        return decode_vector(self._request("POST", "/v1/solve", payload)["solution"])

    def healthz(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def keys(self) -> list[str]:
        return self._request("GET", "/v1/keys")["keys"]

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        req = urllib.request.Request(self.base_url + "/metrics", method="GET")
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return resp.read().decode()

    def tracez(self, *, trace_id: str | None = None, limit: int = 20) -> dict:
        """Recent traces (or one trace by id) from ``GET /tracez``."""
        query = {"limit": str(limit)}
        if trace_id is not None:
            query["trace_id"] = trace_id
        return self._request("GET", "/tracez?" + urllib.parse.urlencode(query))

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")
