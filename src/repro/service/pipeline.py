"""SolveService: the backpressured request pipeline.

Request lifecycle::

    submit ──admission──▶ micro-batcher ──take──▶ worker ──▶ store ──▶ panel solve
       │        │                                   │
       │   QueueFullError                      retry (transient)
       │   ServiceClosedError                  DeadlineExceededError
       ▼
    SolveTicket ◀─────────── result / typed error ──┘

Design rules, in order of priority:

* **Reject, never deadlock.**  Admission is a bounded counter checked
  synchronously in :meth:`SolveService.submit`; an overloaded service raises
  :class:`~repro.service.errors.QueueFullError` immediately instead of
  blocking the caller or growing an unbounded queue.
* **Admitted work finishes.**  :meth:`SolveService.close` stops admission,
  flushes the batcher, and joins the workers — every ticket handed out
  resolves (with a result or a typed error) before ``close`` returns.
* **Deadlines are checked where time is spent.**  A request carries an
  absolute deadline; a worker drops it with
  :class:`~repro.service.errors.DeadlineExceededError` when the deadline
  passed while it waited in the batcher (the solve itself is never
  interrupted mid-flight — tiles are shared state).
* **Transient failures retry, others don't.**
  :class:`~repro.service.errors.TransientSolveError` from the solver
  provider or the solve is retried up to ``max_retries`` times for the whole
  batch; any other exception fails the batch's requests at once.

Everything is observable twice: through the ambient
:class:`~repro.obs.Instrumentation` probe (``service.*`` metrics, folded into
run reports) and through the service's own :meth:`SolveService.stats` —
which also carries exact p50/p95 latencies from a bounded reservoir, since
decade buckets are too coarse for tail-latency reporting.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import nullcontext as _null_ctx

import numpy as np

from ..obs import current as obs_current
from ..obs.exposition import SlidingWindow
from ..obs.metrics import Histogram
from ..obs.tracing import current_trace
from .batcher import MicroBatcher
from .errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    TransientSolveError,
)
from .problems import ProblemSpec, build_solver, check_rhs, spec_fingerprint
from .store import FactorizationStore

__all__ = ["SolveTicket", "SolveService"]

#: Exact latencies kept for percentile reporting (oldest dropped first).
_RESERVOIR = 4096


class SolveTicket:
    """Handle to one admitted request; resolves to a solution or a typed error."""

    __slots__ = (
        "key", "submitted_at", "finished_at", "_event", "_result", "_error",
        "_cb_lock", "_callbacks",
    )

    def __init__(self, key: str, submitted_at: float) -> None:
        self.key = key
        self.submitted_at = submitted_at
        self.finished_at: float | None = None
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None
        self._cb_lock = threading.Lock()
        self._callbacks: list = []

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        return self._event.wait(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise TimeoutError("ticket not resolved within timeout")
        return self._error

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the solution; re-raises the request's typed error."""
        if not self._event.wait(timeout):
            raise TimeoutError("ticket not resolved within timeout")
        if self._error is not None:
            raise self._error
        return self._result

    def add_done_callback(self, fn) -> None:
        """Run ``fn(ticket)`` once the ticket resolves (immediately if it
        already has).  Callbacks run on the resolving thread — keep them
        short and never block in one.  The fleet's re-routing rides this."""
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _resolve(self, result=None, error=None, *, t: float) -> None:
        self._result = result
        self._error = error
        self.finished_at = t
        self._event.set()
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _Request:
    __slots__ = ("spec", "rhs", "deadline", "ticket", "trace", "owns_trace",
                 "t_submit", "batch_waited")

    def __init__(self, spec, rhs, deadline, ticket) -> None:
        self.spec = spec
        self.rhs = rhs
        self.deadline = deadline
        self.ticket = ticket
        # Tracing state: ``trace`` is the request's TraceContext (or None);
        # ``owns_trace`` marks traces this service started itself (the fleet
        # finishes the ones it owns).  Span timestamps live in the
        # perf_counter domain, never the service clock.
        self.trace = None
        self.owns_trace = False
        self.t_submit = 0.0
        self.batch_waited = 0.0


class SolveService:
    """Bounded-admission, micro-batched, multi-worker solve pipeline.

    Parameters
    ----------
    store:
        The :class:`~repro.service.store.FactorizationStore` backing solves
        (a fresh in-memory store when omitted).
    workers:
        Worker threads consuming batches.  Batches for distinct fingerprints
        execute concurrently; one fingerprint's panel solve is single-sweep.
    max_queue:
        Admission capacity: requests admitted but not yet resolved.  Hitting
        it raises :class:`QueueFullError` at submit time — the backpressure
        contract.
    max_batch / max_delay:
        Micro-batching knobs (see :class:`~repro.service.batcher.MicroBatcher`).
        ``max_batch`` is also the panel width of the fused solve.
    max_retries:
        Re-executions of a batch after a
        :class:`~repro.service.errors.TransientSolveError` before its
        requests fail.
    solver_provider:
        ``(key, spec) -> TileHMatrix`` seam; defaults to
        ``store.get_or_build(key, lambda: build_solver(spec))``.  Tests
        inject failures here.
    exec_mode / exec_workers:
        Executor for cold-start factorizations (``"eager"``, ``"threaded"``
        or ``"process"``) and its worker count (defaults to the machine's
        core count, capped at 4, for the non-eager modes).  Warm solves are
        unaffected: panel sweeps always run on the eager executor.
    name:
        Label for this pipeline in traces and per-worker telemetry (fleet
        shards pass their worker name; ``None`` keeps the single-service
        unlabelled metric paths).
    """

    def __init__(
        self,
        store: FactorizationStore | None = None,
        *,
        workers: int = 2,
        max_queue: int = 64,
        max_batch: int = 8,
        max_delay: float = 0.002,
        max_retries: int = 2,
        solver_provider=None,
        exec_mode: str = "eager",
        exec_workers: int | None = None,
        clock=time.monotonic,
        name: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if exec_mode not in ("eager", "threaded", "process"):
            raise ValueError(
                f"exec_mode must be 'eager', 'threaded' or 'process', got {exec_mode!r}"
            )
        if exec_workers is not None and exec_workers < 1:
            raise ValueError(f"exec_workers must be >= 1, got {exec_workers}")
        self.exec_mode = exec_mode
        if exec_workers is not None:
            self.exec_workers = exec_workers
        else:
            self.exec_workers = (
                1 if exec_mode == "eager" else max(1, min(4, os.cpu_count() or 1))
            )
        self.store = store if store is not None else FactorizationStore()
        self.max_queue = max_queue
        self.max_retries = max_retries
        self.name = name
        self._provider = solver_provider or self._default_provider
        self._clock = clock
        # Expired requests are shed while a batch forms, not when the worker
        # dequeues it: a dead request must never occupy one of the max_batch
        # panel slots that a live straggler could have ridden.
        self._batcher = MicroBatcher(
            max_batch=max_batch, max_delay=max_delay, clock=clock,
            shed=lambda r, now: r.deadline is not None and now > r.deadline,
            on_shed=self._shed_expired,
            on_batch=self._on_batch_formed,
        )

        self._lock = threading.Lock()
        self._inflight = 0
        self._depth_peak = 0
        self._closed = False
        self._admitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._expired = 0
        self._retries = 0
        self._latency = Histogram()
        self._batch_hist = Histogram()
        self._reservoir: deque = deque(maxlen=_RESERVOIR)
        self._window = SlidingWindow(clock=clock)

        self._threads = [
            threading.Thread(target=self._worker_loop, name=f"solve-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- admission ------------------------------------------------------------
    def submit(self, spec, rhs, *, timeout: float | None = None) -> SolveTicket:
        """Admit one solve request; returns a :class:`SolveTicket`.

        Raises :class:`ServiceClosedError` after :meth:`close`,
        :class:`QueueFullError` at capacity, and :class:`BadRequestError` for
        malformed specs or right-hand sides — all synchronously, so rejected
        work never occupies a queue slot.
        """
        if not isinstance(spec, ProblemSpec):
            spec = ProblemSpec.from_dict(spec)
        rhs = self._check_rhs(spec, rhs)
        key = spec_fingerprint(spec)
        now = self._clock()
        deadline = None if timeout is None else now + timeout
        probe = obs_current()
        with self._lock:
            if self._closed:
                self._rejected += 1
                if probe is not None:
                    probe.service_rejected("closed")
                raise ServiceClosedError("service is shutting down; request rejected")
            if self._inflight >= self.max_queue:
                self._rejected += 1
                if probe is not None:
                    probe.service_rejected("queue_full")
                raise QueueFullError(
                    f"admission queue full ({self._inflight}/{self.max_queue}); retry later"
                )
            self._inflight += 1
            self._admitted += 1
            depth = self._inflight
            if depth > self._depth_peak:
                self._depth_peak = depth
        if probe is not None:
            probe.service_admitted()
            probe.service_queue_depth(depth, worker=self.name)
        ticket = SolveTicket(key, now)
        r = _Request(spec, rhs, deadline, ticket)
        # Adopt the caller's ambient trace (the fleet activates its context
        # around dispatch) or open one of our own for direct submissions.
        ctx = current_trace()
        if ctx is None and probe is not None:
            ctx = probe.tracer.start(key)
            r.owns_trace = ctx is not None
        r.trace = ctx
        r.t_submit = time.perf_counter()
        self._batcher.add(key, r)
        return ticket

    def solve(self, spec, rhs, *, timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience: :meth:`submit` and wait for the result."""
        return self.submit(spec, rhs, timeout=timeout).result()

    def _check_rhs(self, spec: ProblemSpec, rhs) -> np.ndarray:
        return check_rhs(spec, rhs)

    def keys(self) -> list[str]:
        """Fingerprints available in the backing store (either tier)."""
        return self.store.keys()

    # -- execution ------------------------------------------------------------
    def _default_provider(self, key: str, spec: ProblemSpec):
        return self.store.get_or_build(
            key,
            lambda: build_solver(
                spec, exec_mode=self.exec_mode, nworkers=self.exec_workers
            ),
        )

    def _worker_loop(self) -> None:
        while True:
            batch = self._batcher.take(timeout=0.1)
            if batch is not None:
                self._run_batch(*batch)
                continue
            if self._batcher._draining:
                # A timeout-None can race drain(): drain the batcher dry
                # before exiting so no admitted request is stranded.
                while True:
                    batch = self._batcher.take(timeout=0)
                    if batch is None:
                        return
                    self._run_batch(*batch)

    def _on_batch_formed(self, key: str, items: list, waited: float) -> None:
        """Formation observer (under the batcher lock): remember how long
        the batch coalesced so the worker can emit batch-wait spans."""
        for r in items:
            r.batch_waited = waited

    def _shed_expired(self, key: str, r: "_Request") -> None:
        """Batch-formation shed (from the batcher): typed error, no slot used."""
        now = self._clock()
        self._finish(
            r,
            error=DeadlineExceededError(
                f"deadline passed {now - r.deadline:.3f}s while waiting to batch"
            ),
            expired=True,
        )

    def _run_batch(self, key: str, requests: list) -> None:
        # Formation-time shedding already filtered expired requests; this
        # re-check only catches a deadline that passed between the batcher's
        # pop and this worker picking the batch up.
        now = self._clock()
        live = []
        for r in requests:
            if r.deadline is not None and now > r.deadline:
                self._finish(
                    r,
                    error=DeadlineExceededError(
                        f"deadline passed {now - r.deadline:.3f}s before the solve started"
                    ),
                    expired=True,
                )
            else:
                live.append(r)
        if not live:
            return

        probe = obs_current()
        with self._lock:
            self._batch_hist.observe(len(live))
        if probe is not None:
            probe.service_batch(len(live))

        # Queue-wait / batch-wait spans: the time from submit to this worker
        # picking the batch up, and the slice of it the batcher deliberately
        # held the bucket open for coalescing.
        label = self.name or "svc"
        t_take = time.perf_counter()
        for r in live:
            ctx = r.trace
            if ctx is not None:
                ctx.add_span("queue-wait", r.t_submit, t_take, worker=label)
                if r.batch_waited > 0.0:
                    ctx.add_span(
                        "batch-wait", t_take - r.batch_waited, t_take,
                        worker=label, batch=len(live),
                    )

        # One multi-RHS panel sweep for the whole batch.  Batch composition
        # cannot change any request's bits: the panel solve is column-stable.
        panel = np.stack([r.rhs for r in live], axis=1)
        error: BaseException | None = None
        x = None
        # The lead request's trace rides ambiently through the provider
        # (store lookup / cold build / factorize) and the panel solve, so a
        # cold build's executor spans attach to the request that triggered it.
        lead = live[0].trace
        ambient = lead.activate() if lead is not None else _null_ctx()
        with ambient:
            for attempt in range(self.max_retries + 1):
                try:
                    solver = self._provider(key, live[0].spec)
                    t_s0 = time.perf_counter()
                    x = solver.solve(panel)
                    t_s1 = time.perf_counter()
                    for r in live:
                        if r.trace is not None:
                            r.trace.add_span(
                                "solve", t_s0, t_s1, worker=label, batch=len(live)
                            )
                    error = None
                    break
                except TransientSolveError as exc:
                    error = exc
                    if attempt < self.max_retries:
                        with self._lock:
                            self._retries += 1
                        if probe is not None:
                            probe.service_retry()
                except Exception as exc:  # non-retryable: fail the batch at once
                    error = exc
                    break

        if error is not None:
            for r in live:
                self._finish(r, error=error)
            return
        for j, r in enumerate(live):
            self._finish(r, result=np.ascontiguousarray(x[:, j]))

    def _finish(self, r: _Request, *, result=None, error=None, expired=False) -> None:
        now = self._clock()
        probe = obs_current()
        with self._lock:
            self._inflight -= 1
            depth = self._inflight
            if error is None:
                self._completed += 1
                latency = now - r.ticket.submitted_at
                self._latency.observe(latency)
                self._reservoir.append(latency)
                self._window.observe(latency, now)
            else:
                self._failed += 1
                if expired:
                    self._expired += 1
        if probe is not None:
            probe.service_queue_depth(depth, worker=self.name)
            if error is None:
                probe.service_completed(now - r.ticket.submitted_at)
            else:
                probe.service_failed(getattr(error, "code", type(error).__name__))
        if r.trace is not None and r.owns_trace:
            # Fleet-owned traces are finished by the fleet's finalizer (it
            # appends routing outcome first); ours end here.
            r.trace.finish("ok" if error is None else getattr(error, "code", type(error).__name__))
        r.ticket._resolve(result=result, error=error, t=now)

    # -- shutdown -------------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self, timeout: float | None = None) -> None:
        """Graceful drain: stop admission, finish every admitted request,
        stop the workers.  Idempotent."""
        with self._lock:
            self._closed = True
        self._batcher.drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        for t in self._threads:
            t.join(None if deadline is None else max(0.0, deadline - time.monotonic()))

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reporting ------------------------------------------------------------
    def queue_depth(self) -> int:
        with self._lock:
            return self._inflight

    def lane_windows(self) -> dict:
        """Rolling-window latency summary for ``GET /metrics`` (a single
        ``default`` lane — the fleet overrides this with per-lane windows)."""
        snap = self._window.snapshot(self._clock())
        with self._lock:
            snap["inflight"] = self._inflight
        return {"default": snap}

    def stats(self) -> dict:
        """The ``service`` section of a ``repro-run-report/v1`` (schema-valid),
        with exact p50/p95 latencies added from the reservoir."""
        with self._lock:
            latency = self._latency.snapshot()
            sample = sorted(self._reservoir)
            counts = {
                "admitted": self._admitted,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "expired": self._expired,
                "retries": self._retries,
            }
            batch = self._batch_hist.snapshot()
            depth_peak = self._depth_peak
        if sample:
            # Exact reservoir percentiles override the bucket estimates.
            latency["p50"] = sample[int(0.50 * (len(sample) - 1))]
            latency["p95"] = sample[int(0.95 * (len(sample) - 1))]
            latency["p99"] = sample[int(0.99 * (len(sample) - 1))]
        return {
            "requests": counts,
            "latency_seconds": latency,
            "batch_size": batch,
            "queue": {"depth_peak": depth_peak, "capacity": self.max_queue},
            "store": self.store.stats(),
            "workers": len(self._threads),
            "executor": {"mode": self.exec_mode, "nworkers": self.exec_workers},
        }
