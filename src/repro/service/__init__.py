"""Solve service: factorization store, micro-batched serving, backpressure.

The serving layer over the Tile-H solver (see :doc:`docs/service`):

* :class:`FactorizationStore` — content-addressed persistence + LRU cache of
  factorized matrices, so each problem fingerprint is factorized once;
* :class:`MicroBatcher` — coalesces concurrent requests against one
  factorization into a single multi-RHS panel sweep (bit-identical to
  solving each request alone: the panel kernels are column-stable);
* :class:`SolveService` — bounded admission with explicit
  :class:`QueueFullError` backpressure, per-request deadlines, retries on
  :class:`TransientSolveError`, worker pool, graceful drain on close;
* :class:`ServeFleet` — N sharded services behind a
  :class:`ConsistentHashRouter` with per-lane SLO admission
  (:class:`DeadlineUnmeetableError` shedding), warm replication of hot
  fingerprints, and crash re-routing (:class:`WorkerCrashedError`);
* :func:`make_server` / :class:`SolveClient` — a stdlib JSON/HTTP boundary
  (``repro serve`` / ``repro request`` on the CLI).
"""

from .batcher import MicroBatcher
from .errors import (
    BadRequestError,
    DeadlineExceededError,
    DeadlineUnmeetableError,
    QueueFullError,
    ServiceClosedError,
    ServiceError,
    TransientSolveError,
    WorkerCrashedError,
)
from .fleet import ConsistentHashRouter, FleetTicket, LaneConfig, ServeFleet
from .http import SolveClient, decode_vector, encode_vector, make_server
from .pipeline import SolveService, SolveTicket
from .problems import ProblemSpec, build_solver, check_rhs, rhs_dtype, spec_fingerprint
from .store import FactorizationStore

__all__ = [
    "BadRequestError",
    "ConsistentHashRouter",
    "DeadlineExceededError",
    "DeadlineUnmeetableError",
    "FactorizationStore",
    "FleetTicket",
    "LaneConfig",
    "MicroBatcher",
    "ProblemSpec",
    "QueueFullError",
    "ServeFleet",
    "ServiceClosedError",
    "ServiceError",
    "SolveClient",
    "SolveService",
    "SolveTicket",
    "TransientSolveError",
    "WorkerCrashedError",
    "build_solver",
    "check_rhs",
    "decode_vector",
    "encode_vector",
    "make_server",
    "rhs_dtype",
    "spec_fingerprint",
]
