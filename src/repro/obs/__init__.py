"""Runtime observability: metrics registry, span probe, and run reports.

The layer the paper's Figs. 6-7 analysis needs: per-task-kind time/flop
breakdowns, per-worker idle time under each scheduling policy, steal/queue
counters, and H-arithmetic compression behaviour — folded into one
schema-validated :mod:`run report <repro.obs.report>` per profiled run.

Profile any run by activating a probe around it::

    from repro.obs import Instrumentation, build_run_report, render_report

    with Instrumentation() as probe:
        a, info = TileHMatrix.build_factorize(kern, pts, cfg)
    report = build_run_report(probe=probe, trace=info.trace, graph=info.graph)
    print(render_report(report))

Instrumentation is nil-cost when no probe is active (one ``None`` test per
event at every hook site).
"""

from .metrics import Histogram, MetricsRegistry, SchedulerStats
from .instrument import Instrumentation, current
from .tracing import (
    RequestTracer,
    TraceContext,
    current_trace,
    export_request_chrome_trace,
)
from .exposition import (
    SlidingWindow,
    metrics_text,
    parse_prometheus,
    prometheus_text,
    tracez_payload,
)
from .report import (
    REPORT_SCHEMA,
    SCHEMA_ID,
    build_run_report,
    diff_reports,
    load_report,
    nontiming_view,
    render_report,
    validate_report,
    write_report,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "SchedulerStats",
    "Instrumentation",
    "current",
    "RequestTracer",
    "TraceContext",
    "current_trace",
    "export_request_chrome_trace",
    "SlidingWindow",
    "metrics_text",
    "parse_prometheus",
    "prometheus_text",
    "tracez_payload",
    "REPORT_SCHEMA",
    "SCHEMA_ID",
    "build_run_report",
    "diff_reports",
    "validate_report",
    "render_report",
    "write_report",
    "load_report",
    "nontiming_view",
]
