"""Per-request distributed tracing for the serve fleet.

A :class:`TraceContext` is created at admission (one per request), travels
with the request object through routing, batching, the solve pipeline and
into the executors, and collects named *spans* — ``queue-wait``,
``batch-wait``, ``route``/``rehome``, ``store-hit``/``store-load``/``build``,
``factorize``, ``solve`` and per-kernel ``kernel:<kind>`` phases.  Completed
traces land in the :class:`RequestTracer` ring buffer, from which they are
served live (``GET /tracez``), folded into the run report (``tracing``
section) and exported as a cross-shard Chrome trace
(:func:`export_request_chrome_trace`, ``repro trace``).

Propagation is ambient within a thread: :meth:`TraceContext.activate`
installs the context in a ``threading.local`` slot and :func:`current_trace`
reads it back, so deep layers (the factorization store, ``build_solver``,
the executors) attach spans without any API churn.  Across the
``ProcessExecutor`` pipe the *trace id* rides along with each dispatch batch
and comes back with each result, letting the parent attach worker-side
kernel spans to the owning request's trace.

All span timestamps are absolute ``time.perf_counter()`` values (one
monotonic clock per machine — comparable across threads and, on Linux,
across processes); ``TraceContext.to_dict`` normalises them relative to the
trace start so exported traces are small, portable numbers.
"""

from __future__ import annotations

import json
import secrets
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "Span",
    "TraceContext",
    "RequestTracer",
    "current_trace",
    "export_request_chrome_trace",
]

_tls = threading.local()


def current_trace() -> "TraceContext | None":
    """The trace context activated on this thread (or None)."""
    return getattr(_tls, "ctx", None)


class Span:
    """One timed phase of a request: ``[start, end]`` on ``worker``."""

    __slots__ = ("name", "start", "end", "worker", "meta")

    def __init__(self, name: str, start: float, end: float, worker: str | None = None, meta: dict | None = None) -> None:
        self.name = name
        self.start = float(start)
        self.end = float(end)
        self.worker = worker
        self.meta = meta

    def to_dict(self, origin: float = 0.0) -> dict:
        d = {"name": self.name, "t0": self.start - origin, "t1": self.end - origin}
        if self.worker is not None:
            d["worker"] = self.worker
        if self.meta:
            d["meta"] = dict(self.meta)
        return d


class TraceContext:
    """Span collector for one request (bounded; thread-safe).

    ``start`` is the absolute ``perf_counter`` at creation.  ``add_span``
    takes absolute timestamps in the same clock; once ``max_spans`` have
    been recorded further spans are counted in ``dropped_spans`` instead of
    stored (runaway protection — a single request should never hold more
    than a few hundred phases).
    """

    __slots__ = (
        "trace_id",
        "key",
        "lane",
        "start",
        "spans",
        "dropped_spans",
        "outcome",
        "end",
        "max_spans",
        "tracer",
        "_lock",
    )

    def __init__(
        self,
        key: str = "",
        lane: str | None = None,
        *,
        trace_id: str | None = None,
        max_spans: int = 512,
        tracer: "RequestTracer | None" = None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else secrets.token_hex(8)
        self.key = key
        self.lane = lane
        self.start = time.perf_counter()
        self.spans: list[Span] = []
        self.dropped_spans = 0
        self.outcome: str | None = None
        self.end: float | None = None
        self.max_spans = max_spans
        self.tracer = tracer
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------
    def add_span(self, name: str, start: float, end: float, *, worker: str | None = None, **meta) -> None:
        """Record one completed phase (absolute ``perf_counter`` stamps)."""
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            self.spans.append(Span(name, start, end, worker, meta or None))

    @contextmanager
    def span(self, name: str, *, worker: str | None = None, **meta):
        """Context manager timing one phase with ``perf_counter``."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_span(name, t0, time.perf_counter(), worker=worker, **meta)

    # -- ambient propagation ------------------------------------------------
    @contextmanager
    def activate(self):
        """Install this context as the thread's ambient trace (see
        :func:`current_trace`); restores the previous one on exit."""
        prev = getattr(_tls, "ctx", None)
        _tls.ctx = self
        try:
            yield self
        finally:
            _tls.ctx = prev

    # -- completion ---------------------------------------------------------
    def finish(self, outcome: str = "ok") -> None:
        """Seal the trace and hand it to the owning tracer's ring buffer."""
        with self._lock:
            if self.end is not None:  # already finished
                return
            self.end = time.perf_counter()
            self.outcome = outcome
        if self.tracer is not None:
            self.tracer._complete(self)

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot; span times relative to trace start.

        ``start`` stays absolute (``perf_counter`` epoch) so multiple traces
        from one process can be merged on a common timeline.
        """
        with self._lock:
            spans = [s.to_dict(self.start) for s in self.spans]
            return {
                "trace_id": self.trace_id,
                "key": self.key,
                "lane": self.lane,
                "start": self.start,
                "duration_seconds": self.duration,
                "outcome": self.outcome if self.outcome is not None else "pending",
                "spans": spans,
                "dropped_spans": self.dropped_spans,
            }


class RequestTracer:
    """Bounded ring buffer of completed request traces.

    ``capacity`` is the number of *completed* traces retained (oldest
    evicted first); ``capacity == 0`` disables tracing — :meth:`start`
    returns ``None`` and every propagation site's ``ctx is not None`` test
    short-circuits, preserving the disabled-overhead bound.
    """

    def __init__(self, capacity: int = 64, *, max_spans: int = 512) -> None:
        self.capacity = int(capacity)
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=max(1, self.capacity))
        self._active: dict[str, TraceContext] = {}
        self.started = 0
        self.completed = 0
        self.evicted = 0
        self.dropped_spans = 0
        self._phases: dict[str, list] = {}  # name -> [count, seconds]
        self._slowest: dict[str, dict] = {}  # lane -> trace summary

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # -- lifecycle ----------------------------------------------------------
    def start(self, key: str = "", lane: str | None = None) -> TraceContext | None:
        """Open a trace for one admitted request (None when disabled)."""
        if self.capacity <= 0:
            return None
        ctx = TraceContext(key, lane, max_spans=self.max_spans, tracer=self)
        with self._lock:
            self.started += 1
            self._active[ctx.trace_id] = ctx
        return ctx

    def _complete(self, ctx: TraceContext) -> None:
        d = ctx.to_dict()
        lane = d["lane"] or "default"
        with self._lock:
            self._active.pop(ctx.trace_id, None)
            self.completed += 1
            self.dropped_spans += d["dropped_spans"]
            if len(self._recent) == self._recent.maxlen:
                self.evicted += 1
            self._recent.append(d)
            for s in d["spans"]:
                agg = self._phases.setdefault(s["name"], [0, 0.0])
                agg[0] += 1
                agg[1] += s["t1"] - s["t0"]
            worst = self._slowest.get(lane)
            if worst is None or d["duration_seconds"] > worst["duration_seconds"]:
                self._slowest[lane] = {
                    "trace_id": d["trace_id"],
                    "key": d["key"],
                    "duration_seconds": d["duration_seconds"],
                }

    # -- queries ------------------------------------------------------------
    def get(self, trace_id: str) -> dict | None:
        """A completed trace by id (most-recent-first search)."""
        with self._lock:
            for d in reversed(self._recent):
                if d["trace_id"] == trace_id:
                    return d
        return None

    def traces(self, limit: int | None = None) -> list[dict]:
        """Completed traces, most recent last."""
        with self._lock:
            out = list(self._recent)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def slowest_per_lane(self) -> dict:
        with self._lock:
            return {k: dict(v) for k, v in sorted(self._slowest.items())}

    def phase_totals(self) -> dict:
        with self._lock:
            return {
                name: {"count": c, "seconds": s}
                for name, (c, s) in sorted(self._phases.items())
            }

    def report(self, *, recent_limit: int = 32) -> dict:
        """The ``tracing`` section of a run report."""
        return {
            "capacity": self.capacity,
            "started": self.started,
            "completed": self.completed,
            "evicted": self.evicted,
            "dropped_spans": self.dropped_spans,
            "phases": self.phase_totals(),
            "slowest_per_lane": self.slowest_per_lane(),
            "recent": self.traces(recent_limit),
        }


def export_request_chrome_trace(
    traces,
    path,
    *,
    counters: dict | None = None,
    counters_origin: float = 0.0,
    metadata: dict | None = None,
) -> Path:
    """Write one or many request traces as a Chrome ``chrome://tracing`` /
    Perfetto JSON file on a common timeline.

    Each distinct span ``worker`` label (shard pipelines, thread/process
    workers; spans without one land on ``"request"``) becomes a named thread
    lane via ``"M"`` thread-name metadata; spans become ``"X"`` duration
    events carrying trace id / key / lane in ``args``.  ``counters`` maps
    track names to ``[(t, value), ...]`` series (e.g. per-worker queue
    depth); their timestamps are offset by ``counters_origin`` — pass the
    probe's :attr:`~repro.obs.instrument.Instrumentation.origin` so counter
    samples line up with span timestamps on the shared clock.
    """
    if isinstance(traces, dict):
        traces = [traces]
    traces = list(traces)
    if not traces:
        raise ValueError("no traces to export")
    t_min = min(t["start"] for t in traces)

    lanes: list[str] = []
    seen = set()
    for t in traces:
        for s in t["spans"]:
            w = s.get("worker") or "request"
            if w not in seen:
                seen.add(w)
                lanes.append(w)
    lanes.sort()
    tid_of = {w: i for i, w in enumerate(lanes)}

    events: list[dict] = []
    for tid, w in enumerate(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": w},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for t in traces:
        base = t["start"] - t_min
        for s in t["spans"]:
            w = s.get("worker") or "request"
            args = {"trace_id": t["trace_id"], "key": t["key"]}
            if t.get("lane"):
                args["lane"] = t["lane"]
            if s.get("meta"):
                args.update(s["meta"])
            events.append(
                {
                    "name": s["name"],
                    "cat": s["name"].split(":", 1)[0],
                    "ph": "X",
                    "ts": (base + s["t0"]) * 1e6,
                    "dur": max(0.0, s["t1"] - s["t0"]) * 1e6,
                    "pid": 0,
                    "tid": tid_of[w],
                    "args": args,
                }
            )
    for name, series in (counters or {}).items():
        for t, v in series:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": (counters_origin + t - t_min) * 1e6,
                    "pid": 0,
                    "args": {name: v},
                }
            )

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "n_traces": len(traces),
            "trace_ids": [t["trace_id"] for t in traces],
            **(metadata or {}),
        },
    }
    path = Path(path)
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path
