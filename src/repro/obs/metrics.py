"""Metric primitives: counters, gauges, and timing/value histograms.

The :class:`MetricsRegistry` is the flat name -> value store behind the
:class:`~repro.obs.instrument.Instrumentation` probe.  Names are dotted
strings ("h.recompressions", "tasks.submitted"); the registry is
thread-safe (the threaded executor's workers and the GIL-releasing H-kernels
update it concurrently) and its snapshot is plain JSON-serialisable data.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Histogram", "MetricsRegistry", "SchedulerStats"]


class Histogram:
    """Streaming summary of observed values: count/sum/min/max + log10 buckets.

    Buckets are decades of the observed value (``bucket = floor(log10 v)``,
    clamped to [-9, 9]; zero and negatives land in the ``"<=0"`` bucket), so a
    per-kind *timing* histogram separates microsecond scheduling noise from
    millisecond kernels without configuration.

    Decade buckets alone lose resolution where service latencies cluster
    (every sub-millisecond p50 lands in one ``1e-4`` bucket), so each value
    is *also* recorded in a finer 1-2-5-per-decade bucket (``"2e-4"`` covers
    ``[2e-4, 5e-4)``); :meth:`quantile` interpolates within those fine
    buckets.  ``snapshot()`` keeps every pre-existing key with unchanged
    semantics and adds ``fine`` and ``p50``/``p95``/``p99``.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "fine")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[str, int] = {}
        self.fine: dict[str, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            key = fine_key = "<=0"
        else:
            d = max(-9, min(9, math.floor(math.log10(value))))
            key = f"1e{d}"
            m = value / 10.0**d
            sub = 5 if m >= 5.0 else (2 if m >= 2.0 else 1)
            fine_key = f"{sub}e{d}"
        self.buckets[key] = self.buckets.get(key, 0) + 1
        self.fine[fine_key] = self.fine.get(fine_key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def _bounds(fine_key: str) -> tuple[float, float]:
        """[lower, upper) value range of one fine bucket."""
        if fine_key == "<=0":
            return (0.0, 0.0)
        mant, exp = fine_key.split("e", 1)
        lo = int(mant) * 10.0 ** int(exp)
        nxt = {1: 2.0, 2: 2.5, 5: 2.0}[int(mant)]
        return (lo, lo * nxt)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) by linear interpolation inside
        the fine 1-2-5 buckets, clamped to the observed min/max."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        items = sorted(self.fine.items(), key=lambda kv: self._bounds(kv[0])[0])
        seen = 0
        for fine_key, n in items:
            if seen + n >= target:
                lo, hi = self._bounds(fine_key)
                frac = (target - seen) / n if n else 0.0
                est = lo + (hi - lo) * frac
                return max(self.min, min(self.max, est))
            seen += n
        return self.max

    def snapshot(self) -> dict:
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "min": 0.0,
                "max": 0.0,
                "mean": 0.0,
                "buckets": {},
                "fine": {},
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": dict(sorted(self.buckets.items())),
            "fine": dict(sorted(self.fine.items())),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Thread-safe counters / gauges / histograms keyed by dotted names."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, Histogram] = {}

    # -- counters ----------------------------------------------------------
    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    # -- gauges --------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def add_gauge(self, name: str, delta: float) -> float:
        """Adjust a gauge by ``delta`` and return the new value (running level)."""
        with self._lock:
            v = self._gauges.get(name, 0.0) + delta
            self._gauges[name] = v
            return v

    def max_gauge(self, name: str, value: float) -> None:
        """Raise the gauge to ``value`` if larger (peak tracking)."""
        with self._lock:
            if value > self._gauges.get(name, -math.inf):
                self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    # -- histograms -------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                h = self._hists[name] = Histogram()
            h.observe(value)

    def histogram(self, name: str) -> dict:
        """Snapshot of the named histogram (zeros if never observed)."""
        with self._lock:
            h = self._hists.get(name)
            return h.snapshot() if h is not None else Histogram().snapshot()

    # -- export -------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serialisable snapshot of every metric."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {k: h.snapshot() for k, h in sorted(self._hists.items())},
            }


class SchedulerStats:
    """Push/pop/steal counters one :class:`~repro.runtime.schedulers.Scheduler`
    reports into while attached (see ``Scheduler.attach_stats``).

    All updates happen under the executor's condition variable (threaded) or
    in the single simulator thread, so plain integer fields suffice.  A
    *steal attempt* is any ``pop`` that finds the caller's own queue empty on
    a per-worker policy (``ws``/``lws``); it is a *steal* when a victim task
    is actually taken.  Central-queue policies only count local pops.
    """

    __slots__ = (
        "pushes",
        "pops_local",
        "steal_attempts",
        "steals",
        "depth_samples",
        "depth_sum",
        "depth_max",
    )

    def __init__(self) -> None:
        self.pushes = 0
        self.pops_local = 0
        self.steal_attempts = 0
        self.steals = 0
        self.depth_samples = 0
        self.depth_sum = 0
        self.depth_max = 0

    def sample_depth(self, depth: int) -> None:
        self.depth_samples += 1
        self.depth_sum += depth
        if depth > self.depth_max:
            self.depth_max = depth

    def snapshot(self) -> dict:
        return {
            "pushes": self.pushes,
            "pops_local": self.pops_local,
            "steal_attempts": self.steal_attempts,
            "steals": self.steals,
            "queue_depth_samples": self.depth_samples,
            "queue_depth_max": self.depth_max,
            "queue_depth_mean": (
                self.depth_sum / self.depth_samples if self.depth_samples else 0.0
            ),
        }
