"""Live telemetry surface: Prometheus-style text exposition + rolling windows.

:func:`metrics_text` renders everything observable about a running serve
process — the active probe's :class:`~repro.obs.metrics.MetricsRegistry`
(counters, gauges, histogram summaries with p50/p95/p99 quantiles), the
service/fleet ``stats()`` tree flattened to gauges, and the per-lane
rolling-window latency summaries — in the Prometheus text format
(``text/plain; version=0.0.4``) for ``GET /metrics``.

Registry names may carry embedded labels (``'service.queue_depth{worker="w0"}'``)
— the brace part is passed through as the Prometheus label set, which is how
per-shard queue depth and per-lane SLO gauges come out as properly
labelled families.

:class:`SlidingWindow` is the rolling-latency reservoir behind the per-lane
quantiles: a time-bounded deque of ``(t, value)`` pairs, pruned on read, so
``/metrics`` reports *recent* latency rather than the lifetime mix the
registry histograms accumulate.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque

__all__ = [
    "SlidingWindow",
    "prometheus_text",
    "metrics_text",
    "parse_prometheus",
    "tracez_payload",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|[Ii]nf|NaN))$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


class SlidingWindow:
    """Time-bounded latency reservoir: keeps ``(t, value)`` observations
    newer than ``window_seconds`` (and at most ``maxlen`` of them) and
    reports count/mean/max/p50/p95/p99 over that window."""

    def __init__(self, window_seconds: float = 60.0, *, maxlen: int = 4096, clock=time.monotonic) -> None:
        self.window_seconds = float(window_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._obs: deque[tuple[float, float]] = deque(maxlen=maxlen)

    def observe(self, value: float, t: float | None = None) -> None:
        if t is None:
            t = self._clock()
        with self._lock:
            self._obs.append((t, float(value)))

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._obs and self._obs[0][0] < horizon:
            self._obs.popleft()

    def snapshot(self, now: float | None = None) -> dict:
        if now is None:
            now = self._clock()
        with self._lock:
            self._prune_locked(now)
            values = sorted(v for _, v in self._obs)
        n = len(values)
        if n == 0:
            return {
                "window_seconds": self.window_seconds,
                "count": 0,
                "sum": 0.0,
                "mean": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }

        def pct(q: float) -> float:
            return values[min(n - 1, int(q * n))]

        total = sum(values)
        return {
            "window_seconds": self.window_seconds,
            "count": n,
            "sum": total,
            "mean": total / n,
            "max": values[-1],
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
        }


# -- rendering ---------------------------------------------------------------


def _fmt(v) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return format(f, ".10g")


def _split_labels(name: str) -> tuple[str, str]:
    """``'a.b{worker="w0"}'`` -> (``"a_b"``, ``'{worker="w0"}'``)."""
    labels = ""
    if "{" in name:
        name, _, rest = name.partition("{")
        labels = "{" + rest
    return _NAME_OK.sub("_", name), labels


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def prometheus_text(registry_snapshot: dict, *, prefix: str = "repro_") -> str:
    """Render a ``MetricsRegistry.as_dict()`` snapshot as Prometheus text.

    Counters and gauges map 1:1; histograms come out as summaries
    (``{quantile="0.5|0.95|0.99"}`` + ``_sum`` + ``_count``)."""
    lines: list[str] = []
    typed: set[str] = set()

    def emit(name: str, labels: str, value, kind: str | None = None) -> None:
        full = prefix + name
        if kind and full not in typed:
            typed.add(full)
            lines.append(f"# TYPE {full} {kind}")
        lines.append(f"{full}{labels} {_fmt(value)}")

    for name, value in registry_snapshot.get("counters", {}).items():
        base, labels = _split_labels(name)
        emit(base, labels, value, "counter")
    for name, value in registry_snapshot.get("gauges", {}).items():
        base, labels = _split_labels(name)
        emit(base, labels, value, "gauge")
    for name, snap in registry_snapshot.get("histograms", {}).items():
        base, labels = _split_labels(name)
        full = prefix + base
        if full not in typed:
            typed.add(full)
            lines.append(f"# TYPE {full} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            qlab = _merge_labels(labels, 'quantile="%s"' % q)
            lines.append(f"{full}{qlab} {_fmt(snap.get(key, 0.0))}")
        lines.append(f"{full}_sum{labels} {_fmt(snap.get('sum', 0.0))}")
        lines.append(f"{full}_count{labels} {_fmt(snap.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _flatten_stats(stats, path: str, out: list[tuple[str, float]]) -> None:
    if isinstance(stats, dict):
        for k, v in sorted(stats.items()):
            key = f"{path}_{k}" if path else str(k)
            _flatten_stats(v, key, out)
    elif isinstance(stats, bool):
        out.append((path, 1.0 if stats else 0.0))
    elif isinstance(stats, (int, float)):
        out.append((path, float(stats)))
    # strings / lists are identity, not telemetry — skipped


def _lane_window_lines(windows: dict, *, prefix: str = "repro_") -> list[str]:
    lines = [f"# TYPE {prefix}lane_latency_seconds summary"]
    for lane, snap in sorted(windows.items()):
        lab = f'lane="{lane}"'
        for q, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            lines.append(
                f'{prefix}lane_latency_seconds{{{lab},quantile="{q}"}} {_fmt(snap.get(key, 0.0))}'
            )
        lines.append(f"{prefix}lane_latency_seconds_sum{{{lab}}} {_fmt(snap.get('sum', 0.0))}")
        lines.append(f"{prefix}lane_latency_seconds_count{{{lab}}} {_fmt(snap.get('count', 0))}")
        for g in ("window_seconds", "inflight"):
            if g in snap:
                lines.append(f"{prefix}lane_{g}{{{lab}}} {_fmt(snap[g])}")
        slo = snap.get("slo")
        if slo:
            for g in ("target_seconds", "attainment", "burn_rate", "violations"):
                if g in slo:
                    lines.append(f"{prefix}lane_slo_{g}{{{lab}}} {_fmt(slo[g])}")
    return lines


def metrics_text(service=None, probe=None) -> str:
    """The full ``GET /metrics`` document for a serve process.

    ``service`` is a :class:`~repro.service.pipeline.SolveService` or
    :class:`~repro.service.fleet.ServeFleet` (anything with ``stats()``;
    ``lane_windows()`` adds the rolling per-lane latency summaries);
    ``probe`` defaults to the ambient active probe."""
    if probe is None:
        from .instrument import current as _current

        probe = _current()
    parts: list[str] = []
    if probe is not None:
        parts.append(prometheus_text(probe.registry.as_dict()))
        tracer = getattr(probe, "tracer", None)
        if tracer is not None:
            parts.append(
                "# TYPE repro_traces_completed counter\n"
                f"repro_traces_completed {tracer.completed}\n"
                "# TYPE repro_traces_active gauge\n"
                f"repro_traces_active {tracer.active_count()}\n"
            )
    if service is not None:
        section = "fleet" if hasattr(service, "worker_stats") else "service"
        flat: list[tuple[str, float]] = []
        _flatten_stats(service.stats(), section, flat)
        lines = ["# service/fleet stats() snapshot, flattened"]
        for name, value in flat:
            base, labels = _split_labels(name)
            lines.append(f"repro_{base}{labels} {_fmt(value)}")
        parts.append("\n".join(lines) + "\n")
        windows = getattr(service, "lane_windows", None)
        if callable(windows):
            parts.append("\n".join(_lane_window_lines(windows())) + "\n")
    return "".join(parts)


def parse_prometheus(text: str) -> dict:
    """Strict parser for the exposition format produced above (used by tests
    and the CI smoke scrape): returns ``{name: [(labels_dict, value), ...]}``
    and raises ``ValueError`` on any malformed non-comment line."""
    out: dict[str, list] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        m = _LINE.match(line)
        if m is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        out.setdefault(name, []).append((dict(_LABEL.findall(labels)), float(value)))
    return out


def tracez_payload(probe, service=None, *, trace_id: str | None = None, limit: int = 20) -> dict:
    """The ``GET /tracez`` JSON document: recent completed traces (or one
    trace by id) + slowest-per-lane index."""
    tracer = getattr(probe, "tracer", None) if probe is not None else None
    if tracer is None or not tracer.enabled:
        return {"enabled": False, "traces": []}
    if trace_id is not None:
        trace = tracer.get(trace_id)
        return {"enabled": True, "trace": trace, "found": trace is not None}
    return {
        "enabled": True,
        "capacity": tracer.capacity,
        "started": tracer.started,
        "completed": tracer.completed,
        "active": tracer.active_count(),
        "evicted": tracer.evicted,
        "slowest_per_lane": tracer.slowest_per_lane(),
        "traces": tracer.traces(limit),
    }
