"""The span/counter probe every runtime and H-arithmetic layer reports into.

One :class:`Instrumentation` object observes one profiled run.  Components
receive it two ways:

* explicitly — ``StfEngine(instrument=...)``, ``ThreadedExecutor(...,
  instrument=...)``, ``simulate(..., instrument=...)``;
* ambiently — ``with Instrumentation() as probe:`` installs the probe as the
  process-wide *active* probe that the H-kernels (ACA, Rk rounding, the
  update accumulator, tile assembly) consult through :func:`current`, so the
  numerical layers need no API churn to be observable.

Disabled cost is one ``is None`` test per event: when no probe is active,
:func:`current` returns ``None`` and every call site skips its hook.  Only
one profiled run can be active at a time (the active slot is a module
global, deliberately shared across worker threads).
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict

from .metrics import MetricsRegistry, SchedulerStats
from .tracing import RequestTracer

__all__ = ["Instrumentation", "current"]

_active: "Instrumentation | None" = None
_active_lock = threading.Lock()


def current() -> "Instrumentation | None":
    """The active probe installed by ``Instrumentation.__enter__`` (or None)."""
    return _active


def _kind_zero() -> dict:
    return {"submitted": 0, "count": 0, "seconds": 0.0, "flops": 0.0, "operand_bytes": 0}


def _worker_zero() -> dict:
    return {"tasks": 0, "busy_seconds": 0.0, "wait_seconds": 0.0}


class Instrumentation:
    """Per-run observability hub: registry + per-kind/worker aggregates +
    scheduler counters + time series for Chrome counter tracks.

    ``clock`` defaults to ``time.perf_counter``; series timestamps are
    relative to construction time (virtual-time callers pass explicit ``t``).

    ``trace_capacity`` sizes the :class:`~repro.obs.tracing.RequestTracer`
    ring buffer of completed request traces (serve path); 0 disables
    request tracing while keeping the metric hooks live.
    """

    def __init__(self, clock=time.perf_counter, *, trace_capacity: int = 64) -> None:
        self.registry = MetricsRegistry()
        self.sched = SchedulerStats()
        self.kinds: dict[str, dict] = defaultdict(_kind_zero)
        self.workers: dict[int, dict] = defaultdict(_worker_zero)
        self.series: dict[str, list[tuple[float, float]]] = {}
        self.tracer = RequestTracer(trace_capacity)
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()

    # -- activation ------------------------------------------------------------
    def __enter__(self) -> "Instrumentation":
        global _active
        with _active_lock:
            if _active is not None:
                raise RuntimeError("another Instrumentation probe is already active")
            _active = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        with _active_lock:
            if _active is self:
                _active = None

    # -- clocks --------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the probe was created (real-time series timestamps)."""
        return self._clock() - self._t0

    @property
    def origin(self) -> float:
        """Absolute clock value at probe creation — the epoch of every
        series timestamp (aligns counter tracks with request-trace spans)."""
        return self._t0

    # -- runtime hooks -----------------------------------------------------------
    def task_submitted(self, task, operand_bytes: int = 0, operand_max_rank: int = 0) -> None:
        """One task entered the STF engine (tagged with flops + operand stats)."""
        with self._lock:
            k = self.kinds[task.kind]
            k["submitted"] += 1
            k["flops"] += task.flops
            k["operand_bytes"] += operand_bytes
        self.registry.inc("tasks.submitted")
        if operand_max_rank:
            self.registry.observe("tasks.operand_max_rank", operand_max_rank)

    def task_span(self, kind: str, worker: int, start: float, end: float) -> None:
        """One task executed on ``worker`` over ``[start, end]``."""
        dur = end - start
        with self._lock:
            k = self.kinds[kind]
            k["count"] += 1
            k["seconds"] += dur
            w = self.workers[worker]
            w["tasks"] += 1
            w["busy_seconds"] += dur
        self.registry.observe(f"tasks.seconds.{kind}", dur)

    def worker_wait(self, worker: int, seconds: float) -> None:
        """Measured time ``worker`` spent parked waiting for ready work."""
        with self._lock:
            self.workers[worker]["wait_seconds"] += seconds

    def sample(self, name: str, value: float, t: float | None = None) -> None:
        """Append a (t, value) point to the named counter-track series."""
        if t is None:
            t = self.now()
        with self._lock:
            self.series.setdefault(name, []).append((t, float(value)))

    # -- H-arithmetic hooks ---------------------------------------------------------
    def recompression(self, m: int, n: int, rank_in: int, rank_out: int) -> None:
        """One QR+QR+SVD rounding of an (m x n) Rk block."""
        reg = self.registry
        reg.inc("h.recompressions")
        reg.observe("h.rank_in", rank_in)
        reg.observe("h.rank_out", rank_out)
        reg.observe("h.rank_drop", rank_in - rank_out)

    def block_compressed(self, m: int, n: int, rank: int, itemsize: int) -> None:
        """One admissible block compressed (ACA/SVD) during assembly."""
        reg = self.registry
        reg.inc("h.blocks_compressed")
        reg.inc("h.compressed_bytes", float((m + n) * rank * itemsize))
        reg.inc("h.dense_bytes", float(m * n * itemsize))
        reg.observe("h.block_rank", rank)

    def h_bytes_delta(self, delta: float, t: float | None = None) -> None:
        """H-matrix storage grew/shrank by ``delta`` bytes (peak is tracked,
        and the running level feeds the Chrome ``h_bytes`` counter track)."""
        level = self.registry.add_gauge("h.bytes", float(delta))
        self.registry.max_gauge("h.peak_bytes", level)
        self.sample("h_bytes", level, t)

    def accumulator_deferred(self) -> None:
        self.registry.inc("h.accumulator.deferred")

    def accumulator_flush(self, nblocks: int, early: bool = False) -> None:
        self.registry.inc("h.accumulator.flushed_blocks", nblocks)
        if early:
            self.registry.inc("h.accumulator.early_flushes", nblocks)

    # -- Krylov hooks ----------------------------------------------------------
    def krylov_solve(
        self, method: str, iterations: int, converged: bool, final_residual: float
    ) -> None:
        """One Krylov solve (pcg/gmres) finished — the preconditioner-quality
        signal: few iterations + converged means the loose H-factorisation is
        doing its job."""
        reg = self.registry
        reg.inc("krylov.solves")
        reg.inc(f"krylov.solves.{method}")
        reg.inc("krylov.iters", iterations)
        reg.inc("krylov.converged" if converged else "krylov.unconverged")
        reg.observe("krylov.iterations", iterations)
        reg.observe("krylov.final_residual", final_residual)

    # -- solve-service hooks --------------------------------------------------
    def service_admitted(self) -> None:
        """One request accepted into the solve service's admission queue."""
        self.registry.inc("service.requests.admitted")

    def service_rejected(self, reason: str) -> None:
        """One request rejected (``reason``: "queue_full", "closed",
        "deadline", ...) — the backpressure signal."""
        self.registry.inc("service.requests.rejected")
        self.registry.inc(f"service.requests.rejected.{reason}")

    def service_completed(self, latency_seconds: float) -> None:
        """One admitted request finished successfully; records the
        admission-to-reply latency decade histogram."""
        self.registry.inc("service.requests.completed")
        self.registry.observe("service.latency_seconds", latency_seconds)

    def service_failed(self, reason: str) -> None:
        """One admitted request failed terminally (after retries)."""
        self.registry.inc("service.requests.failed")
        self.registry.inc(f"service.requests.failed.{reason}")

    def service_retry(self) -> None:
        """One transient failure retried."""
        self.registry.inc("service.requests.retries")

    def service_batch(self, size: int) -> None:
        """One micro-batch dispatched as a multi-RHS panel solve."""
        self.registry.inc("service.batches")
        self.registry.observe("service.batch_size", size)

    def service_queue_depth(
        self, depth: int, t: float | None = None, worker: str | None = None
    ) -> None:
        """Admission-queue depth after an enqueue/dequeue (gauge + peak +
        Chrome counter-track series).

        Fleet shards pass their ``worker`` name so per-shard depth stays
        visible: the labelled gauge/series are recorded per worker while the
        aggregate ``service.queue_depth_peak`` (which the report's service
        section reads) still tracks the max over all shards."""
        if worker is None:
            self.registry.set_gauge("service.queue_depth", depth)
            self.registry.max_gauge("service.queue_depth_peak", depth)
            self.sample("service_queue_depth", depth, t)
        else:
            self.registry.set_gauge(f'service.queue_depth{{worker="{worker}"}}', depth)
            self.registry.max_gauge(f'service.queue_depth_peak{{worker="{worker}"}}', depth)
            self.registry.max_gauge("service.queue_depth_peak", depth)
            self.sample(f"service_queue_depth[{worker}]", depth, t)

    def fleet_lane_slo(self, lane: str, attainment: float, burn_rate: float) -> None:
        """Per-lane SLO health after one terminal request outcome."""
        self.registry.set_gauge(f'fleet.slo_attainment{{lane="{lane}"}}', attainment)
        self.registry.set_gauge(f'fleet.slo_burn_rate{{lane="{lane}"}}', burn_rate)

    def store_lookup(self, hit: bool) -> None:
        """One FactorizationStore key lookup."""
        self.registry.inc("service.store.hits" if hit else "service.store.misses")

    def store_eviction(self) -> None:
        """One cached factorization evicted to respect the byte budget."""
        self.registry.inc("service.store.evictions")

    def store_bytes_delta(self, delta: float, t: float | None = None) -> None:
        """Store cache residency grew/shrank by ``delta`` bytes; feeds the
        same H-memory accounting as :meth:`h_bytes_delta` plus a dedicated
        store gauge."""
        level = self.registry.add_gauge("service.store.bytes", float(delta))
        self.registry.max_gauge("service.store.peak_bytes", level)
        self.h_bytes_delta(delta, t)

    # -- process-executor hooks -----------------------------------------------
    def process_workers(self, count: int) -> None:
        """A process executor started ``count`` worker processes."""
        self.registry.max_gauge("process.workers", count)

    def process_dispatch(self, nbytes: int) -> None:
        """One task shipped to a worker (``nbytes`` of skeleton pickles)."""
        self.registry.inc("process.dispatches")
        if nbytes:
            self.registry.inc("process.ipc_bytes", float(nbytes))

    def process_dispatch_batch(self, size: int) -> None:
        """One pipe write carried ``size`` task entries to a worker."""
        self.registry.inc("process.dispatch_batches")
        self.registry.observe("process.batch_size", size)

    def process_result_bytes(self, nbytes: int) -> None:
        """Result skeletons reshipped from a worker."""
        self.registry.inc("process.ipc_bytes", float(nbytes))

    def process_shm_bytes(self, nbytes: int) -> None:
        """Bytes copied into shared-memory segments over the run."""
        if nbytes:
            self.registry.inc("process.shm_bytes", float(nbytes))

    def process_segments(self, count: int) -> None:
        """Shared-memory segments created (and unlinked) by the run."""
        self.registry.max_gauge("process.segments", count)
