"""Run reports: one JSON document per profiled run + schema + text renderer.

A :func:`build_run_report` call folds everything a profiled run produced —
the :class:`~repro.obs.instrument.Instrumentation` aggregates, the
:class:`~repro.runtime.trace.ExecutionTrace`, and the task graph — into a
single JSON-serialisable report answering the paper's Fig. 6/7 questions:
where did the time go per kernel kind, how idle was each worker under the
chosen policy, how many steals happened, and how the Tile-H blocks
compressed.  The report validates against :data:`REPORT_SCHEMA` (a
self-contained JSON-Schema subset — no external dependency) and renders to
fixed-width tables with :func:`render_report` (the ``repro report`` CLI).

This module deliberately imports nothing from the runtime/analysis layers at
module level so the ambient-probe import chain stays acyclic.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "SCHEMA_ID",
    "REPORT_SCHEMA",
    "build_run_report",
    "validate_report",
    "render_report",
    "write_report",
    "load_report",
    "nontiming_view",
    "diff_reports",
]

SCHEMA_ID = "repro-run-report/v1"

_HIST = {
    "type": "object",
    "required": ["count", "sum", "min", "max", "mean"],
    "properties": {
        "count": {"type": "integer", "minimum": 0},
        "sum": {"type": "number"},
        "min": {"type": "number"},
        "max": {"type": "number"},
        "mean": {"type": "number"},
        "buckets": {"type": "object", "additionalProperties": {"type": "integer"}},
    },
}

#: JSON schema (draft-subset: type/properties/required/items/additionalProperties/
#: enum/minimum) of one run report.
REPORT_SCHEMA = {
    "type": "object",
    "required": ["schema", "meta", "totals", "kinds", "workers", "scheduler", "hmatrix"],
    "properties": {
        "schema": {"type": "string", "enum": [SCHEMA_ID]},
        "meta": {"type": "object"},
        "totals": {
            "type": "object",
            "required": [
                "makespan",
                "busy_seconds",
                "idle_seconds",
                "utilization",
                "n_tasks",
                "n_dependencies",
                "total_flops",
            ],
            "properties": {
                "makespan": {"type": "number", "minimum": 0},
                "busy_seconds": {"type": "number", "minimum": 0},
                "idle_seconds": {"type": "number", "minimum": 0},
                "utilization": {"type": "number", "minimum": 0},
                "n_tasks": {"type": "integer", "minimum": 0},
                "n_dependencies": {"type": "integer", "minimum": 0},
                "total_flops": {"type": "number", "minimum": 0},
                "flop_rate": {"type": "number", "minimum": 0},
                "nworkers": {"type": "integer", "minimum": 0},
            },
        },
        "kinds": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["count", "seconds", "flops", "share_of_busy"],
                "properties": {
                    "submitted": {"type": "integer", "minimum": 0},
                    "count": {"type": "integer", "minimum": 0},
                    "seconds": {"type": "number", "minimum": 0},
                    "flops": {"type": "number", "minimum": 0},
                    "share_of_busy": {"type": "number", "minimum": 0},
                    "operand_bytes": {"type": "integer", "minimum": 0},
                },
            },
        },
        "workers": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["worker", "tasks", "busy_seconds", "idle_seconds", "utilization"],
                "properties": {
                    "worker": {"type": "integer", "minimum": 0},
                    "tasks": {"type": "integer", "minimum": 0},
                    "busy_seconds": {"type": "number", "minimum": 0},
                    "idle_seconds": {"type": "number", "minimum": 0},
                    "wait_seconds": {"type": "number", "minimum": 0},
                    "utilization": {"type": "number", "minimum": 0},
                },
            },
        },
        "scheduler": {
            "type": "object",
            "required": ["pushes", "pops_local", "steal_attempts", "steals"],
            "properties": {
                "pushes": {"type": "integer", "minimum": 0},
                "pops_local": {"type": "integer", "minimum": 0},
                "steal_attempts": {"type": "integer", "minimum": 0},
                "steals": {"type": "integer", "minimum": 0},
                "queue_depth_samples": {"type": "integer", "minimum": 0},
                "queue_depth_max": {"type": "integer", "minimum": 0},
                "queue_depth_mean": {"type": "number", "minimum": 0},
            },
        },
        "hmatrix": {
            "type": "object",
            "required": ["recompressions", "blocks_compressed", "compressed_bytes", "dense_bytes"],
            "properties": {
                "recompressions": {"type": "integer", "minimum": 0},
                "rank_in": _HIST,
                "rank_out": _HIST,
                "blocks_compressed": {"type": "integer", "minimum": 0},
                "block_rank": _HIST,
                "compressed_bytes": {"type": "number", "minimum": 0},
                "dense_bytes": {"type": "number", "minimum": 0},
                "peak_bytes": {"type": "number", "minimum": 0},
                "accumulator": {
                    "type": "object",
                    "properties": {
                        "deferred": {"type": "integer", "minimum": 0},
                        "flushed_blocks": {"type": "integer", "minimum": 0},
                        "early_flushes": {"type": "integer", "minimum": 0},
                    },
                },
            },
        },
        "counters": {"type": "object"},
        "service": {
            "type": "object",
            "required": ["requests", "latency_seconds", "batch_size", "store"],
            "properties": {
                "requests": {
                    "type": "object",
                    "required": ["admitted", "rejected", "completed", "failed"],
                    "properties": {
                        "admitted": {"type": "integer", "minimum": 0},
                        "rejected": {"type": "integer", "minimum": 0},
                        "completed": {"type": "integer", "minimum": 0},
                        "failed": {"type": "integer", "minimum": 0},
                        "expired": {"type": "integer", "minimum": 0},
                        "retries": {"type": "integer", "minimum": 0},
                    },
                },
                "latency_seconds": _HIST,
                "batch_size": _HIST,
                "queue": {
                    "type": "object",
                    "properties": {
                        "depth_peak": {"type": "integer", "minimum": 0},
                        "capacity": {"type": "integer", "minimum": 0},
                    },
                },
                "store": {
                    "type": "object",
                    "required": ["hits", "misses"],
                    "properties": {
                        "hits": {"type": "integer", "minimum": 0},
                        "misses": {"type": "integer", "minimum": 0},
                        "evictions": {"type": "integer", "minimum": 0},
                        "entries": {"type": "integer", "minimum": 0},
                        "bytes": {"type": "number", "minimum": 0},
                        "peak_bytes": {"type": "number", "minimum": 0},
                        "budget_bytes": {"type": ["number", "null"]},
                    },
                },
                "workers": {"type": "integer", "minimum": 0},
                "executor": {
                    "type": "object",
                    "properties": {
                        "mode": {"type": "string"},
                        "nworkers": {"type": "integer", "minimum": 0},
                    },
                },
            },
        },
        "process": {
            "type": "object",
            "required": ["workers", "dispatches", "ipc_bytes", "shm_bytes", "segments"],
            "properties": {
                "workers": {"type": "integer", "minimum": 0},
                "dispatches": {"type": "integer", "minimum": 0},
                "dispatch_batches": {"type": "integer", "minimum": 0},
                "batch_size": _HIST,
                "ipc_bytes": {"type": "number", "minimum": 0},
                "shm_bytes": {"type": "number", "minimum": 0},
                "segments": {"type": "integer", "minimum": 0},
            },
        },
        "nested": {
            "type": "object",
            "required": [
                "min_leaf",
                "coarse",
                "expanded_tasks",
                "subtasks",
                "subtasks_per_expansion",
                "critical_path_before",
                "critical_path_after",
            ],
            "properties": {
                "min_leaf": {"type": "integer", "minimum": 1},
                "coarse": {"type": "boolean"},
                "expanded_tasks": {"type": "integer", "minimum": 0},
                "subtasks": {"type": "integer", "minimum": 0},
                "subtasks_per_expansion": {"type": "number", "minimum": 0},
                "graph_tasks": {"type": "integer", "minimum": 0},
                "contracted_tasks": {"type": "integer", "minimum": 0},
                "cost_attr": {"type": "string"},
                "critical_path_before": {"type": "number", "minimum": 0},
                "critical_path_after": {"type": "number", "minimum": 0},
            },
        },
        "fleet": {
            "type": "object",
            "required": ["workers", "healthy_workers", "lanes", "routing"],
            "properties": {
                "workers": {"type": "integer", "minimum": 0},
                "healthy_workers": {"type": "integer", "minimum": 0},
                "failed_workers": {"type": "integer", "minimum": 0},
                "requeues": {"type": "integer", "minimum": 0},
                "lanes": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "required": ["admitted", "completed", "failed", "shed", "rejected"],
                        "properties": {
                            "admitted": {"type": "integer", "minimum": 0},
                            "completed": {"type": "integer", "minimum": 0},
                            "failed": {"type": "integer", "minimum": 0},
                            "expired": {"type": "integer", "minimum": 0},
                            "shed": {"type": "integer", "minimum": 0},
                            "rejected": {"type": "integer", "minimum": 0},
                            "inflight": {"type": "integer", "minimum": 0},
                            "inflight_peak": {"type": "integer", "minimum": 0},
                            "max_inflight": {"type": "integer", "minimum": 0},
                            "est_service_seconds": {"type": "number", "minimum": 0},
                            "p50_ms": {"type": "number", "minimum": 0},
                            "p95_ms": {"type": "number", "minimum": 0},
                            "p99_ms": {"type": "number", "minimum": 0},
                            "slo": {
                                "type": "object",
                                "properties": {
                                    "target_seconds": {"type": "number", "minimum": 0},
                                    "good": {"type": "integer", "minimum": 0},
                                    "violations": {"type": "integer", "minimum": 0},
                                    "attainment": {"type": "number", "minimum": 0},
                                    "burn_rate": {"type": "number", "minimum": 0},
                                },
                            },
                        },
                    },
                },
                "routing": {
                    "type": "object",
                    "required": ["keys", "per_worker", "balance_ratio"],
                    "properties": {
                        "keys": {"type": "integer", "minimum": 0},
                        "per_worker": {
                            "type": "object",
                            "additionalProperties": {"type": "integer", "minimum": 0},
                        },
                        "balance_ratio": {"type": "number", "minimum": 0},
                    },
                },
                "replication": {
                    "type": "object",
                    "properties": {
                        "hot_keys": {"type": "integer", "minimum": 0},
                        "replicated_loads": {"type": "integer", "minimum": 0},
                        "hot_after": {"type": "integer", "minimum": 0},
                    },
                },
            },
        },
        "gp": {
            "type": "object",
            "required": ["kernel", "n_train", "n_test", "train_seconds", "predict_seconds"],
            "properties": {
                "kernel": {"type": "string"},
                "geometry": {"type": "string"},
                "n_train": {"type": "integer", "minimum": 0},
                "n_test": {"type": "integer", "minimum": 0},
                "length": {"type": "number", "minimum": 0},
                "signal": {"type": "number", "minimum": 0},
                "noise": {"type": "number", "minimum": 0},
                "eps": {"type": "number", "minimum": 0},
                "exec_mode": {"type": "string"},
                "train_seconds": {"type": "number", "minimum": 0},
                "predict_seconds": {"type": "number", "minimum": 0},
                "predict_throughput_rps": {"type": "number", "minimum": 0},
                "batch_width_mean": {"type": "number", "minimum": 0},
                "mean_rmse": {"type": "number", "minimum": 0},
                "var_min": {"type": "number"},
                "var_max": {"type": "number"},
                "krylov": {
                    "type": "object",
                    "properties": {
                        "iterations": {"type": "integer", "minimum": 0},
                        "converged": {"type": "boolean"},
                        "final_residual": {"type": "number", "minimum": 0},
                    },
                },
            },
        },
        "tracing": {
            "type": "object",
            "required": ["capacity", "started", "completed", "recent"],
            "properties": {
                "capacity": {"type": "integer", "minimum": 0},
                "started": {"type": "integer", "minimum": 0},
                "completed": {"type": "integer", "minimum": 0},
                "evicted": {"type": "integer", "minimum": 0},
                "dropped_spans": {"type": "integer", "minimum": 0},
                "phases": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "required": ["count", "seconds"],
                        "properties": {
                            "count": {"type": "integer", "minimum": 0},
                            "seconds": {"type": "number", "minimum": 0},
                        },
                    },
                },
                "slowest_per_lane": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "required": ["trace_id", "duration_seconds"],
                        "properties": {
                            "trace_id": {"type": "string"},
                            "key": {"type": "string"},
                            "duration_seconds": {"type": "number", "minimum": 0},
                        },
                    },
                },
                "recent": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["trace_id", "start", "duration_seconds", "spans"],
                        "properties": {
                            "trace_id": {"type": "string"},
                            "key": {"type": "string"},
                            "lane": {"type": ["string", "null"]},
                            "start": {"type": "number"},
                            "duration_seconds": {"type": "number", "minimum": 0},
                            "outcome": {"type": "string"},
                            "dropped_spans": {"type": "integer", "minimum": 0},
                            "spans": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["name", "t0", "t1"],
                                    "properties": {
                                        "name": {"type": "string"},
                                        "t0": {"type": "number"},
                                        "t1": {"type": "number"},
                                        "worker": {"type": "string"},
                                        "meta": {"type": "object"},
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


# -- construction -----------------------------------------------------------


def _service_section(reg) -> dict:
    """Fold the probe's ``service.*`` metrics into the report's ``service``
    section (used when the caller has no richer stats dict to contribute)."""
    return {
        "requests": {
            "admitted": int(reg.counter("service.requests.admitted")),
            "rejected": int(reg.counter("service.requests.rejected")),
            "completed": int(reg.counter("service.requests.completed")),
            "failed": int(reg.counter("service.requests.failed")),
            "retries": int(reg.counter("service.requests.retries")),
        },
        "latency_seconds": reg.histogram("service.latency_seconds"),
        "batch_size": reg.histogram("service.batch_size"),
        "queue": {"depth_peak": int(reg.gauge("service.queue_depth_peak"))},
        "store": {
            "hits": int(reg.counter("service.store.hits")),
            "misses": int(reg.counter("service.store.misses")),
            "evictions": int(reg.counter("service.store.evictions")),
            "bytes": reg.gauge("service.store.bytes"),
            "peak_bytes": reg.gauge("service.store.peak_bytes"),
        },
    }


def build_run_report(
    *, probe=None, trace=None, graph=None, meta=None, service=None, fleet=None,
    nested=None, tracing=None, gp=None,
) -> dict:
    """Fold probe aggregates + trace + graph into one schema-valid report.

    ``trace`` (an :class:`~repro.runtime.trace.ExecutionTrace`) is the
    preferred time source: per-kind and per-worker times are integrated from
    its events, so the kind table sums exactly to total busy time.  Without a
    trace (eager runs) the ``graph``'s measured task seconds are used and the
    run is reported as a single worker lane.  ``probe`` contributes flop
    tags, scheduler counters, and the H-arithmetic metrics; any subset of the
    three sources may be omitted.

    ``service`` attaches a solve-service section (see
    ``repro.service.SolveService.stats``); when omitted, a section is folded
    from the probe's ``service.*`` metrics if any request was observed.
    ``fleet`` attaches a serve-fleet section
    (``repro.service.ServeFleet.stats``): per-lane admission/shedding
    counters and latency percentiles, routing balance, and replication.
    ``nested`` attaches a nested-expansion section (the
    ``FactorizationInfo.nested`` dict built by
    ``repro.runtime.NestedStats.report``): how many tile kernels expanded
    into subtask DAGs and the deterministic critical-path lengths of the
    contracted (opaque-equivalent) vs. expanded graph.
    ``tracing`` attaches a request-tracing section (see
    ``repro.obs.RequestTracer.report``); when omitted, the probe's tracer is
    folded in automatically if it completed any trace.
    ``gp`` attaches a Gaussian-process regression section (the ``repro gp``
    CLI and ``bench_gp`` build it): train/predict timings, batching width,
    posterior-mean RMSE and the Krylov refinement stats.
    """
    kinds: dict[str, dict] = {}

    def kind_entry(kind: str) -> dict:
        e = kinds.get(kind)
        if e is None:
            e = kinds[kind] = {
                "submitted": 0,
                "count": 0,
                "seconds": 0.0,
                "flops": 0.0,
                "share_of_busy": 0.0,
                "operand_bytes": 0,
            }
        return e

    workers: list[dict] = []
    makespan = 0.0
    busy = 0.0
    nworkers = 0

    if trace is not None and trace.events:
        makespan = trace.makespan
        nworkers = trace.nworkers
        for e in trace.events:
            entry = kind_entry(e.kind)
            entry["count"] += 1
            entry["seconds"] += e.duration
            busy += e.duration
        for w, lane in enumerate(trace.worker_timelines()):
            wbusy = sum(e.duration for e in lane)
            workers.append(
                {
                    "worker": w,
                    "tasks": len(lane),
                    "busy_seconds": wbusy,
                    "idle_seconds": max(0.0, makespan - wbusy),
                    "utilization": wbusy / makespan if makespan > 0 else 0.0,
                }
            )
    elif graph is not None and len(graph):
        nworkers = 1
        for t in graph:
            entry = kind_entry(t.kind)
            entry["count"] += 1
            entry["seconds"] += t.seconds
            busy += t.seconds
        makespan = busy
        workers.append(
            {
                "worker": 0,
                "tasks": len(graph),
                "busy_seconds": busy,
                "idle_seconds": 0.0,
                "utilization": 1.0 if busy > 0 else 0.0,
            }
        )

    total_flops = 0.0
    if probe is not None:
        for kind, agg in probe.kinds.items():
            entry = kind_entry(kind)
            entry["submitted"] = agg["submitted"]
            entry["flops"] = agg["flops"]
            entry["operand_bytes"] = agg["operand_bytes"]
            total_flops += agg["flops"]
        for w in workers:
            pw = probe.workers.get(w["worker"])
            if pw is not None:
                w["wait_seconds"] = pw["wait_seconds"]
    elif graph is not None:
        for t in graph:
            kind_entry(t.kind)["flops"] += t.flops
            total_flops += t.flops
    if graph is not None and probe is not None:
        # Submitted counts for graphs built without probe-aware engines.
        seen = {k for k, v in kinds.items() if v["submitted"]}
        for t in graph:
            if t.kind not in seen:
                kind_entry(t.kind)["submitted"] += 1
    for entry in kinds.values():
        entry["share_of_busy"] = entry["seconds"] / busy if busy > 0 else 0.0

    sched = probe.sched.snapshot() if probe is not None else {
        "pushes": 0,
        "pops_local": 0,
        "steal_attempts": 0,
        "steals": 0,
        "queue_depth_samples": 0,
        "queue_depth_max": 0,
        "queue_depth_mean": 0.0,
    }

    if probe is not None:
        reg = probe.registry
        hmatrix = {
            "recompressions": int(reg.counter("h.recompressions")),
            "rank_in": reg.histogram("h.rank_in"),
            "rank_out": reg.histogram("h.rank_out"),
            "blocks_compressed": int(reg.counter("h.blocks_compressed")),
            "block_rank": reg.histogram("h.block_rank"),
            "compressed_bytes": reg.counter("h.compressed_bytes"),
            "dense_bytes": reg.counter("h.dense_bytes"),
            "peak_bytes": reg.gauge("h.peak_bytes"),
            "accumulator": {
                "deferred": int(reg.counter("h.accumulator.deferred")),
                "flushed_blocks": int(reg.counter("h.accumulator.flushed_blocks")),
                "early_flushes": int(reg.counter("h.accumulator.early_flushes")),
            },
        }
    else:
        hmatrix = {
            "recompressions": 0,
            "blocks_compressed": 0,
            "compressed_bytes": 0.0,
            "dense_bytes": 0.0,
        }

    report = {
        "schema": SCHEMA_ID,
        "meta": dict(meta or {}),
        "totals": {
            "makespan": makespan,
            "busy_seconds": busy,
            "idle_seconds": max(0.0, makespan * nworkers - busy),
            "utilization": busy / (makespan * nworkers) if makespan > 0 and nworkers else 0.0,
            "n_tasks": len(graph) if graph is not None else sum(e["count"] for e in kinds.values()),
            "n_dependencies": graph.n_edges() if graph is not None else 0,
            "total_flops": total_flops,
            "flop_rate": total_flops / busy if busy > 0 else 0.0,
            "nworkers": nworkers,
        },
        "kinds": kinds,
        "workers": workers,
        "scheduler": sched,
        "hmatrix": hmatrix,
    }
    if probe is not None:
        report["counters"] = probe.registry.as_dict()
    if probe is not None and probe.registry.counter("process.dispatches"):
        reg = probe.registry
        report["process"] = {
            "workers": int(reg.gauge("process.workers")),
            "dispatches": int(reg.counter("process.dispatches")),
            "dispatch_batches": int(reg.counter("process.dispatch_batches")),
            "batch_size": reg.histogram("process.batch_size"),
            "ipc_bytes": reg.counter("process.ipc_bytes"),
            "shm_bytes": reg.counter("process.shm_bytes"),
            "segments": int(reg.gauge("process.segments")),
        }
    if nested is not None:
        report["nested"] = dict(nested)
    if service is not None:
        report["service"] = service
    elif probe is not None and probe.registry.counter("service.requests.admitted"):
        report["service"] = _service_section(probe.registry)
    if fleet is not None:
        report["fleet"] = fleet
    if gp is not None:
        report["gp"] = dict(gp)
    if tracing is not None:
        report["tracing"] = tracing
    else:
        tracer = getattr(probe, "tracer", None)
        if tracer is not None and tracer.completed:
            report["tracing"] = tracer.report()
    return report


# -- validation --------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value, tname: str) -> bool:
    if tname == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if tname == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[tname])


def _validate(value, schema: dict, path: str, errors: list[str]) -> None:
    t = schema.get("type")
    if t is not None:
        names = t if isinstance(t, list) else [t]
        if not any(_type_ok(value, n) for n in names):
            errors.append(f"{path}: expected {t}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                _validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                _validate(sub, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{path}[{i}]", errors)


def validate_report(report) -> list[str]:
    """Validate against :data:`REPORT_SCHEMA`; returns a list of problems
    (empty = valid)."""
    errors: list[str] = []
    _validate(report, REPORT_SCHEMA, "$", errors)
    return errors


# -- persistence -------------------------------------------------------------


def write_report(report: dict, path) -> Path:
    """Validate and write the report as JSON; raises on schema violations."""
    errors = validate_report(report)
    if errors:
        raise ValueError("invalid run report: " + "; ".join(errors[:5]))
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return p


def load_report(path) -> dict:
    return json.loads(Path(path).read_text())


# -- views -------------------------------------------------------------------


def nontiming_view(report: dict) -> dict:
    """The deterministic (timing-free) projection of a report.

    Two profiled runs of the same *eager* computation must agree exactly on
    this view — task/flop counts, scheduler counters (all zero eagerly), and
    every H-arithmetic metric — while wall-clock fields are free to differ.
    Used by the determinism tests and handy for diffing CI artifacts.
    """
    kinds = {
        kind: {"submitted": e["submitted"], "count": e["count"], "flops": e["flops"],
               "operand_bytes": e.get("operand_bytes", 0)}
        for kind, e in sorted(report["kinds"].items())
    }
    sched = {
        k: report["scheduler"][k]
        for k in ("pushes", "pops_local", "steal_attempts", "steals")
    }
    return {
        "n_tasks": report["totals"]["n_tasks"],
        "n_dependencies": report["totals"]["n_dependencies"],
        "total_flops": report["totals"]["total_flops"],
        "kinds": kinds,
        "scheduler": sched,
        "hmatrix": report["hmatrix"],
    }


# -- rendering ---------------------------------------------------------------


def _mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:.2f} MB"


def render_report(report: dict) -> str:
    """Fixed-width text rendering (the ``repro report`` output): a per-kind
    time/flop table and a per-worker busy/idle table à la the paper's Fig. 6
    breakdowns, plus scheduler and H-compression counter lines."""
    from ..analysis.reporting import format_table  # lazy: keeps imports acyclic

    t = report["totals"]
    lines = [f"run report ({report['schema']})"]
    meta = report.get("meta") or {}
    if meta:
        lines.append("meta      : " + " ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    lines.append(
        f"totals    : makespan {t['makespan']:.4f} s on {t.get('nworkers', 0)} workers | "
        f"busy {t['busy_seconds']:.4f} s | idle {t['idle_seconds']:.4f} s | "
        f"utilization {t['utilization']:.0%}"
    )
    lines.append(
        f"graph     : {t['n_tasks']} tasks, {t['n_dependencies']} dependencies, "
        f"{t['total_flops'] / 1e9:.3f} Gflop"
        + (f" @ {t.get('flop_rate', 0.0) / 1e9:.2f} Gflop/s" if t["busy_seconds"] else "")
    )
    lines.append("")
    kind_rows = [
        [
            kind,
            e["count"],
            f"{e['seconds']:.4f}",
            f"{e['share_of_busy']:.1%}",
            f"{e['flops'] / 1e9:.3f}",
        ]
        for kind, e in sorted(
            report["kinds"].items(), key=lambda kv: -kv[1]["seconds"]
        )
    ]
    lines.append(
        format_table(
            ["kind", "count", "seconds", "% busy", "Gflop"],
            kind_rows,
            title="per-kind breakdown",
        )
    )
    if report["workers"]:
        lines.append("")
        worker_rows = [
            [
                w["worker"],
                w["tasks"],
                f"{w['busy_seconds']:.4f}",
                f"{w['idle_seconds']:.4f}",
                f"{w['utilization']:.0%}",
            ]
            for w in report["workers"]
        ]
        lines.append(
            format_table(
                ["worker", "tasks", "busy s", "idle s", "util"],
                worker_rows,
                title="per-worker utilization",
            )
        )
    s = report["scheduler"]
    lines.append("")
    lines.append(
        f"scheduler : pushes={s['pushes']} pops_local={s['pops_local']} "
        f"steal_attempts={s['steal_attempts']} steals={s['steals']} "
        f"queue depth mean={s.get('queue_depth_mean', 0.0):.1f} "
        f"max={s.get('queue_depth_max', 0)}"
    )
    h = report["hmatrix"]
    rank_out = h.get("rank_out", {})
    lines.append(
        f"h-matrix  : {h['recompressions']} recompressions"
        + (
            f" (rank out mean {rank_out['mean']:.1f}, max {rank_out['max']:.0f})"
            if rank_out.get("count")
            else ""
        )
        + f", {h['blocks_compressed']} blocks compressed "
        f"({_mb(h['compressed_bytes'])} vs {_mb(h['dense_bytes'])} dense)"
        + (f", peak {_mb(h['peak_bytes'])}" if h.get("peak_bytes") else "")
    )
    acc = h.get("accumulator")
    if acc and acc.get("deferred"):
        lines.append(
            f"accumulator: {acc['deferred']} deferred updates, "
            f"{acc['flushed_blocks']} block flushes, {acc['early_flushes']} early"
        )
    proc = report.get("process")
    if proc:
        batches = ""
        if proc.get("dispatch_batches"):
            mean = proc["dispatches"] / proc["dispatch_batches"]
            batches = (
                f" in {proc['dispatch_batches']} batches "
                f"(mean {mean:.1f}/write)"
            )
        lines.append(
            f"process   : {proc['workers']} worker processes | "
            f"{proc['dispatches']} dispatches{batches}, "
            f"{_mb(proc['ipc_bytes'])} over pipes | "
            f"{_mb(proc['shm_bytes'])} into {proc['segments']} shm segment(s)"
        )
    nested = report.get("nested")
    if nested:
        cp_b = nested["critical_path_before"]
        cp_a = nested["critical_path_after"]
        ratio = f" ({cp_b / cp_a:.2f}x shorter)" if cp_a else ""
        lines.append(
            f"nested    : {nested['expanded_tasks']} tile kernels expanded into "
            f"{nested['subtasks']} subtasks "
            f"(mean {nested['subtasks_per_expansion']:.1f}, "
            f"min_leaf {nested['min_leaf']}"
            + (", coarse accesses" if nested.get("coarse") else "")
            + f") | critical path {cp_b:.3g} -> {cp_a:.3g} "
            f"{nested.get('cost_attr', 'flops')}{ratio}"
        )
    svc = report.get("service")
    if svc:
        req = svc["requests"]
        lat = svc.get("latency_seconds", {})
        batch = svc.get("batch_size", {})
        store = svc.get("store", {})
        lines.append("")
        lines.append(
            f"service   : {req['admitted']} admitted | {req['completed']} completed | "
            f"{req['rejected']} rejected | {req['failed']} failed"
            + (f" | {req['retries']} retries" if req.get("retries") else "")
        )
        if lat.get("count"):
            pct = ""
            if "p50" in lat:
                pct = f" p50 {lat['p50'] * 1e3:.2f} ms, p95 {lat.get('p95', 0.0) * 1e3:.2f} ms,"
            lines.append(
                f"latency   :{pct} mean {lat['mean'] * 1e3:.2f} ms, "
                f"max {lat['max'] * 1e3:.2f} ms over {lat['count']} requests"
            )
        if batch.get("count"):
            lines.append(
                f"batching  : {batch['count']} panel sweeps, mean width "
                f"{batch['mean']:.2f}, max {batch['max']:.0f}"
                + (
                    f", queue depth peak {svc['queue'].get('depth_peak', 0)}"
                    if svc.get("queue")
                    else ""
                )
            )
        if store:
            total = store.get("hits", 0) + store.get("misses", 0)
            rate = store.get("hits", 0) / total if total else 0.0
            lines.append(
                f"store     : {store.get('hits', 0)} hits / {store.get('misses', 0)} misses "
                f"({rate:.0%} hit rate), {store.get('evictions', 0)} evictions"
                + (f", {_mb(store['bytes'])} resident" if store.get("bytes") else "")
            )
    fleet = report.get("fleet")
    if fleet:
        lines.append("")
        ratio = fleet["routing"]["balance_ratio"]
        # 0.0 is the sentinel for "fewer keys than workers" (some worker owns
        # nothing, so max/min is undefined).
        balance = f"{ratio:.2f}x" if ratio else "n/a"
        lines.append(
            f"fleet     : {fleet['healthy_workers']}/{fleet['workers']} workers healthy | "
            f"{fleet['routing']['keys']} fingerprints, routing balance "
            f"{balance} | "
            f"{fleet.get('requeues', 0)} crash requeues"
        )
        for name, lane in sorted(fleet["lanes"].items()):
            pct = ""
            if "p50_ms" in lane:
                pct = f" | p50 {lane['p50_ms']:.2f} ms, p95 {lane.get('p95_ms', 0.0):.2f} ms"
            slo = lane.get("slo") or {}
            if slo.get("target_seconds") is not None:
                pct += (
                    f" | SLO {slo['target_seconds'] * 1e3:.0f} ms: "
                    f"{slo.get('attainment', 0.0):.1%} attained, "
                    f"burn {slo.get('burn_rate', 0.0):.2f}"
                )
            lines.append(
                f"lane {name:<9}: {lane['admitted']} admitted | {lane['completed']} completed "
                f"| {lane['shed']} shed | {lane['rejected']} rejected{pct}"
            )
        rep = fleet.get("replication") or {}
        if rep.get("hot_keys"):
            lines.append(
                f"replicas  : {rep['hot_keys']} hot fingerprint(s), "
                f"{rep['replicated_loads']} warm loads "
                f"(hot after {rep.get('hot_after', 0)} requests)"
            )
    gp = report.get("gp")
    if gp:
        lines.append("")
        line = (
            f"gp        : {gp['kernel']} n={gp['n_train']} -> {gp['n_test']} test points | "
            f"train {gp['train_seconds']:.3f} s | predict {gp['predict_seconds'] * 1e3:.1f} ms"
        )
        if gp.get("predict_throughput_rps"):
            line += f" ({gp['predict_throughput_rps']:.1f} pred/s)"
        if gp.get("batch_width_mean"):
            line += f" | batch width {gp['batch_width_mean']:.2f}"
        lines.append(line)
        if gp.get("mean_rmse") is not None:
            lines.append(
                f"posterior : mean RMSE {gp['mean_rmse']:.3g} vs latent truth"
                + (
                    f" | variance in [{gp['var_min']:.3g}, {gp['var_max']:.3g}]"
                    if gp.get("var_max") is not None
                    else ""
                )
            )
        krylov = gp.get("krylov")
        if krylov:
            lines.append(
                f"krylov    : pcg {krylov.get('iterations', 0)} iterations, "
                f"{'converged' if krylov.get('converged') else 'NOT converged'}, "
                f"final residual {krylov.get('final_residual', 0.0):.2e}"
            )
    # Ambient krylov counters (recorded by pcg/gmres under any probe).
    ctrs = (report.get("counters") or {}).get("counters") or {}
    if ctrs.get("krylov.solves") and not (gp or {}).get("krylov"):
        lines.append(
            f"krylov    : {int(ctrs['krylov.solves'])} solve(s), "
            f"{int(ctrs.get('krylov.iters', 0))} total iterations, "
            f"{int(ctrs.get('krylov.converged', 0))} converged / "
            f"{int(ctrs.get('krylov.unconverged', 0))} not"
        )
    tracing = report.get("tracing")
    if tracing:
        lines.append("")
        lines.append(
            f"tracing   : {tracing['completed']} traces captured "
            f"(ring {tracing['capacity']}, {tracing.get('evicted', 0)} evicted, "
            f"{tracing.get('dropped_spans', 0)} spans dropped)"
        )
        phases = tracing.get("phases") or {}
        if phases:
            top = sorted(phases.items(), key=lambda kv: -kv[1]["seconds"])[:6]
            lines.append(
                "phases    : "
                + " | ".join(
                    f"{name} {agg['seconds'] * 1e3:.1f} ms x{agg['count']}"
                    for name, agg in top
                )
            )
        for lane, worst in sorted((tracing.get("slowest_per_lane") or {}).items()):
            lines.append(
                f"slowest   : {lane:<11} {worst['duration_seconds'] * 1e3:.2f} ms "
                f"(trace {worst['trace_id']})"
            )
    return "\n".join(lines)


# -- diffing -----------------------------------------------------------------


def _pct_delta(a: float, b: float) -> float | None:
    """Relative change b vs a (None when the baseline is ~zero)."""
    if abs(a) < 1e-12:
        return None
    return (b - a) / a


def _delta_cell(a: float, b: float, *, threshold: float, higher_is_worse: bool = True):
    d = _pct_delta(a, b)
    if d is None:
        return "n/a", False
    regressed = d > threshold if higher_is_worse else d < -threshold
    return f"{d:+.1%}" + (" !" if regressed else ""), regressed


def diff_reports(a: dict, b: dict, *, threshold: float = 0.10) -> tuple[str, list[str]]:
    """Side-by-side comparison of two run reports (``repro report --diff``).

    Returns ``(text, regressions)``: fixed-width totals/kind/worker tables
    with a relative-delta column, and a list of human-readable regression
    descriptions — any timing that grew by more than ``threshold`` (default
    10%) from ``a`` (baseline) to ``b``.  Count/flop drift is shown but not
    flagged; only time-like quantities regress.
    """
    from ..analysis.reporting import format_table  # lazy: keeps imports acyclic

    regressions: list[str] = []
    lines: list[str] = [f"report diff (threshold {threshold:.0%}): A=baseline, B=candidate"]
    for tag, rep in (("A", a), ("B", b)):
        meta = rep.get("meta") or {}
        if meta:
            lines.append(
                f"  {tag}: " + " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
            )
    ta, tb = a["totals"], b["totals"]
    total_rows = []
    for label, key in (
        ("makespan s", "makespan"),
        ("busy s", "busy_seconds"),
        ("idle s", "idle_seconds"),
    ):
        va, vb = ta.get(key, 0.0), tb.get(key, 0.0)
        cell, bad = _delta_cell(va, vb, threshold=threshold)
        if bad:
            regressions.append(f"totals.{key}: {va:.4f} -> {vb:.4f} ({cell.rstrip(' !')})")
        total_rows.append([label, f"{va:.4f}", f"{vb:.4f}", cell])
    for label, key in (("utilization", "utilization"), ("Gflop", "total_flops")):
        va, vb = ta.get(key, 0.0), tb.get(key, 0.0)
        scale = 1e-9 if key == "total_flops" else 1.0
        cell, _ = _delta_cell(va, vb, threshold=threshold, higher_is_worse=False)
        total_rows.append([label, f"{va * scale:.3f}", f"{vb * scale:.3f}", cell.rstrip(" !")])
    lines.append("")
    lines.append(format_table(["total", "A", "B", "delta"], total_rows, title="totals"))

    kind_rows = []
    all_kinds = sorted(
        set(a["kinds"]) | set(b["kinds"]),
        key=lambda k: -max(
            a["kinds"].get(k, {}).get("seconds", 0.0),
            b["kinds"].get(k, {}).get("seconds", 0.0),
        ),
    )
    for kind in all_kinds:
        ka = a["kinds"].get(kind, {})
        kb = b["kinds"].get(kind, {})
        sa, sb = ka.get("seconds", 0.0), kb.get("seconds", 0.0)
        cell, bad = _delta_cell(sa, sb, threshold=threshold)
        if bad:
            regressions.append(f"kinds.{kind}.seconds: {sa:.4f} -> {sb:.4f} ({cell.rstrip(' !')})")
        kind_rows.append(
            [
                kind,
                ka.get("count", 0),
                kb.get("count", 0),
                f"{sa:.4f}",
                f"{sb:.4f}",
                cell,
            ]
        )
    lines.append("")
    lines.append(
        format_table(
            ["kind", "count A", "count B", "sec A", "sec B", "delta"],
            kind_rows,
            title="per-kind",
        )
    )

    wa = {w["worker"]: w for w in a.get("workers", [])}
    wb = {w["worker"]: w for w in b.get("workers", [])}
    worker_rows = []
    for wid in sorted(set(wa) | set(wb)):
        ba = wa.get(wid, {}).get("busy_seconds", 0.0)
        bb = wb.get(wid, {}).get("busy_seconds", 0.0)
        cell, bad = _delta_cell(ba, bb, threshold=threshold)
        if bad:
            regressions.append(
                f"workers[{wid}].busy_seconds: {ba:.4f} -> {bb:.4f} ({cell.rstrip(' !')})"
            )
        worker_rows.append(
            [
                wid,
                f"{ba:.4f}",
                f"{bb:.4f}",
                f"{wa.get(wid, {}).get('utilization', 0.0):.0%}",
                f"{wb.get(wid, {}).get('utilization', 0.0):.0%}",
                cell,
            ]
        )
    if worker_rows:
        lines.append("")
        lines.append(
            format_table(
                ["worker", "busy A", "busy B", "util A", "util B", "delta"],
                worker_rows,
                title="per-worker",
            )
        )

    sa, sb = a.get("service"), b.get("service")
    if sa and sb:
        la, lb = sa.get("latency_seconds", {}), sb.get("latency_seconds", {})
        if la.get("count") and lb.get("count"):
            rows = []
            for label, key in (("p50", "p50"), ("p95", "p95"), ("mean", "mean"), ("max", "max")):
                va, vb = la.get(key, 0.0), lb.get(key, 0.0)
                cell, bad = _delta_cell(va, vb, threshold=threshold)
                if bad:
                    regressions.append(
                        f"service.latency_seconds.{key}: "
                        f"{va * 1e3:.2f} ms -> {vb * 1e3:.2f} ms ({cell.rstrip(' !')})"
                    )
                rows.append([label, f"{va * 1e3:.3f}", f"{vb * 1e3:.3f}", cell])
            lines.append("")
            lines.append(
                format_table(["latency ms", "A", "B", "delta"], rows, title="service latency")
            )

    lines.append("")
    if regressions:
        lines.append(f"regressions (> {threshold:.0%}):")
        lines.extend(f"  ! {r}" for r in regressions)
    else:
        lines.append(f"no regressions beyond {threshold:.0%}")
    return "\n".join(lines), regressions
