"""Full-rank tiled LU (CHAMELEON-classic) — the dense reference baseline.

The paper's introduction contrasts the H-LU's Theta(n k^2 log^2 n) flops
against the dense Theta((2/3) n^3).  This baseline is that dense side: plain
ndarray tiles, the same Algorithm 1 loop nest, the same STF submission — so
format comparisons isolate the storage format, not the algorithm.
"""

from __future__ import annotations

import numpy as np

from ..dense import flops_gemm, flops_getrf, flops_potrf, flops_trsm, gemm_update, getrf_nopiv, trsm
from ..runtime import AccessMode, StfEngine, TaskGraph
from ..core.algorithms import lu_priorities
from ..core.solver import FactorizationInfo
from scipy.linalg import solve_triangular

__all__ = ["DenseTiledLU", "DenseTiledCholesky"]

R, RW = AccessMode.R, AccessMode.RW


class DenseTiledLU:
    """Dense matrix stored as an ``nt x nt`` grid of ndarray tiles."""

    def __init__(self, a: np.ndarray, nb: int) -> None:
        a = np.array(a, copy=True)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"need a square matrix, got shape {a.shape}")
        if nb < 1:
            raise ValueError(f"nb must be positive, got {nb}")
        self.n = a.shape[0]
        self.nb = nb
        self.nt = -(-self.n // nb)
        self.tiles: dict[tuple[int, int], np.ndarray] = {}
        for i in range(self.nt):
            for j in range(self.nt):
                self.tiles[i, j] = np.ascontiguousarray(
                    a[self._sl(i), self._sl(j)]
                )
        self._factorized = False

    def _sl(self, i: int) -> slice:
        return slice(i * self.nb, min((i + 1) * self.nb, self.n))

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n, self.n), dtype=self.tiles[0, 0].dtype)
        for (i, j), t in self.tiles.items():
            out[self._sl(i), self._sl(j)] = t
        return out

    def factorize(self, engine: StfEngine | None = None) -> FactorizationInfo:
        """Tiled right-looking LU (Algorithm 1) on dense tiles, via STF."""
        if self._factorized:
            raise RuntimeError("factorize() called twice")
        eng = engine or StfEngine(mode="eager")
        nt = self.nt
        is_c = np.issubdtype(self.tiles[0, 0].dtype, np.complexfloating)
        handles = {
            (i, j): eng.handle(self.tiles[i, j], f"A[{i},{j}]")
            for i in range(nt)
            for j in range(nt)
        }
        t = self.tiles
        for k in range(nt):
            mk = t[k, k].shape[0]
            eng.insert_task(
                "getrf",
                (lambda k=k: getrf_nopiv(t[k, k], overwrite=True)),
                [(handles[k, k], RW)],
                priority=lu_priorities(nt, k, "getrf"),
                flops=flops_getrf(mk, is_complex=is_c),
                label=f"getrf({k})",
            )
            for j in range(k + 1, nt):
                eng.insert_task(
                    "trsm",
                    (lambda k=k, j=j: trsm(
                        "left", "lower", t[k, k], t[k, j], unit_diagonal=True, overwrite=True
                    )),
                    [(handles[k, k], R), (handles[k, j], RW)],
                    priority=lu_priorities(nt, k, "trsm"),
                    flops=flops_trsm(mk, t[k, j].shape[1], is_complex=is_c),
                    label=f"trsm_u({k},{j})",
                )
            for i in range(k + 1, nt):
                eng.insert_task(
                    "trsm",
                    (lambda k=k, i=i: trsm(
                        "right", "upper", t[k, k], t[i, k], overwrite=True
                    )),
                    [(handles[k, k], R), (handles[i, k], RW)],
                    priority=lu_priorities(nt, k, "trsm"),
                    flops=flops_trsm(mk, t[i, k].shape[0], is_complex=is_c),
                    label=f"trsm_l({i},{k})",
                )
            for i in range(k + 1, nt):
                for j in range(k + 1, nt):
                    eng.insert_task(
                        "gemm",
                        (lambda i=i, k=k, j=j: gemm_update(t[i, j], t[i, k], t[k, j])),
                        [(handles[i, k], R), (handles[k, j], R), (handles[i, j], RW)],
                        priority=lu_priorities(nt, k, "gemm", i, j),
                        flops=flops_gemm(
                            t[i, j].shape[0], t[i, j].shape[1], mk, is_complex=is_c
                        ),
                        label=f"gemm({i},{j},{k})",
                    )
        graph = eng.wait_all()
        self._factorized = True
        return FactorizationInfo(graph=graph, nb=self.nb, nt=self.nt)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Forward/backward substitution over the packed LU tiles."""
        if not self._factorized:
            raise RuntimeError("call factorize() before solve()")
        b = np.asarray(b)
        squeeze = b.ndim == 1
        x = np.array(b[:, None] if squeeze else b, copy=True)
        if x.shape[0] != self.n:
            raise ValueError(f"rhs leading dim {x.shape[0]} != {self.n}")
        nt = self.nt
        for k in range(nt):
            for j in range(k):
                x[self._sl(k)] -= self.tiles[k, j] @ x[self._sl(j)]
            x[self._sl(k)] = solve_triangular(
                self.tiles[k, k], x[self._sl(k)], lower=True, unit_diagonal=True
            )
        for k in reversed(range(nt)):
            for j in range(k + 1, nt):
                x[self._sl(k)] -= self.tiles[k, j] @ x[self._sl(j)]
            x[self._sl(k)] = solve_triangular(self.tiles[k, k], x[self._sl(k)], lower=False)
        return x[:, 0] if squeeze else x


class DenseTiledCholesky(DenseTiledLU):
    """Dense tiled Cholesky (POTRF/TRSM/SYRK loop nest on ndarray tiles).

    The SPD counterpart of :class:`DenseTiledLU`; shares the tile grid and
    solve scaffolding and overrides the factorisation with the classic tiled
    right-looking Cholesky (lower tiles only).
    """

    def factorize(self, engine: StfEngine | None = None) -> FactorizationInfo:
        if self._factorized:
            raise RuntimeError("factorize() called twice")
        eng = engine or StfEngine(mode="eager")
        nt = self.nt
        t = self.tiles
        is_c = np.issubdtype(t[0, 0].dtype, np.complexfloating)
        handles = {
            (i, j): eng.handle(t[i, j], f"A[{i},{j}]")
            for i in range(nt)
            for j in range(i + 1)
        }

        def potrf(k):
            t[k, k][:] = np.linalg.cholesky(t[k, k])

        def trsm_panel(i, k):
            # X L^T = B  =>  X = (L^{-1} B^T)^T.
            t[i, k][:] = solve_triangular(
                t[k, k], t[i, k].conj().T, lower=True, check_finite=False
            ).conj().T

        def update(i, j, k):
            t[i, j] -= t[i, k] @ t[j, k].conj().T

        for k in range(nt):
            mk = t[k, k].shape[0]
            eng.insert_task(
                "potrf",
                (lambda k=k: potrf(k)),
                [(handles[k, k], RW)],
                priority=lu_priorities(nt, k, "getrf"),
                flops=flops_potrf(mk, is_complex=is_c),
                label=f"potrf({k})",
            )
            for i in range(k + 1, nt):
                eng.insert_task(
                    "trsm",
                    (lambda i=i, k=k: trsm_panel(i, k)),
                    [(handles[k, k], R), (handles[i, k], RW)],
                    priority=lu_priorities(nt, k, "trsm"),
                    flops=flops_trsm(mk, t[i, k].shape[0], is_complex=is_c),
                    label=f"trsm({i},{k})",
                )
            for i in range(k + 1, nt):
                for j in range(k + 1, i + 1):
                    eng.insert_task(
                        "gemm",
                        (lambda i=i, j=j, k=k: update(i, j, k)),
                        [(handles[i, k], R), (handles[j, k], R), (handles[i, j], RW)],
                        priority=lu_priorities(nt, k, "gemm", i, j),
                        flops=flops_gemm(
                            t[i, j].shape[0], t[i, j].shape[1], mk, is_complex=is_c
                        ),
                        label=f"syrk({i},{j},{k})" if i == j else f"gemm({i},{j},{k})",
                    )
        graph = eng.wait_all()
        self._factorized = True
        return FactorizationInfo(graph=graph, nb=self.nb, nt=self.nt)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Forward/backward substitution with the lower Cholesky tiles."""
        if not self._factorized:
            raise RuntimeError("call factorize() before solve()")
        b = np.asarray(b)
        squeeze = b.ndim == 1
        x = np.array(b[:, None] if squeeze else b, copy=True)
        if x.shape[0] != self.n:
            raise ValueError(f"rhs leading dim {x.shape[0]} != {self.n}")
        nt = self.nt
        for k in range(nt):
            for j in range(k):
                x[self._sl(k)] -= self.tiles[k, j] @ x[self._sl(j)]
            x[self._sl(k)] = solve_triangular(
                self.tiles[k, k], x[self._sl(k)], lower=True, check_finite=False
            )
        for k in reversed(range(nt)):
            for j in range(k + 1, nt):
                x[self._sl(k)] -= self.tiles[j, k].conj().T @ x[self._sl(j)]
            x[self._sl(k)] = solve_triangular(
                self.tiles[k, k].conj().T, x[self._sl(k)], lower=False, check_finite=False
            )
        return x[:, 0] if squeeze else x
