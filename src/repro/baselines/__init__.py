"""Baselines the paper evaluates against or discusses.

* :mod:`.hmat` — the pure global H-matrix solver with a *fine-grained* task
  DAG (one task per leaf kernel, dependencies enumerated over leaf data),
  standing in for Airbus' proprietary HMAT/StarPU implementation;
* :mod:`.blr` — the Block Low-Rank flat format (related work, Section III);
* :mod:`.dense_tiled` — the classic full-rank tiled LU (CHAMELEON without
  H-arithmetic), the flop/accuracy reference.
"""

from .hmat import HMatSolver, trace_to_graph
from .blr import build_blr, BLRMatrix
from .dense_tiled import DenseTiledLU, DenseTiledCholesky

__all__ = ["HMatSolver", "trace_to_graph", "build_blr", "BLRMatrix", "DenseTiledLU", "DenseTiledCholesky"]
