"""Pure H-matrix solver with a fine-grained task DAG (the "HMAT" baseline).

The paper's performance reference is Airbus' proprietary HMAT library, whose
StarPU port (Lizé [10]) submits one task per *leaf-level* kernel and
enumerates "all the required dependencies for each submitted task"; the
paper notes that the resulting dependency volume is exactly what hurts it on
the cheap-kernel (real double) cases.

This module reconstructs that baseline faithfully:

1. a single global H-matrix is built over the whole geometry (median
   bisection, no tile constraint);
2. the recursive H-LU runs with the :class:`~repro.hmatrix.arithmetic
   .KernelTracer` installed, which observes every leaf GETRF/TRSM/GEMM with
   the H-matrix nodes it reads and writes;
3. the trace replays through the STF engine with node sets expanded to leaf
   granularity, producing the fine-grain DAG with measured costs — orders of
   magnitude more tasks and edges than the Tile-H DAG, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hmatrix import (
    AssemblyConfig,
    HMatrix,
    KernelTracer,
    StrongAdmissibility,
    assemble_hmatrix,
    assemble_hmatrix_tasks,
    build_block_cluster_tree,
    build_cluster_tree,
    hgetrf,
    hlu_solve,
    set_tracer,
)
from ..runtime import (
    SCHEDULER_NAMES,
    AccessMode,
    RaceChecker,
    RuntimeOverheadModel,
    SimulationResult,
    StfEngine,
    TaskGraph,
    ThreadedExecutor,
    simulate,
)

__all__ = ["HMatSolver", "trace_to_graph"]


def _leaf_handles(engine: StfEngine, node: HMatrix, cache: dict) -> list:
    """Handles of all leaves under ``node`` (region-based dependencies).

    Kernel traces reference H-matrix *nodes*; expanding them to leaves links
    a panel solve that reads a whole triangle with the updates that wrote
    individual leaves inside it.
    """
    key = id(node)
    found = cache.get(key)
    if found is None:
        found = [engine.handle(leaf, f"leaf[{leaf.rows.start},{leaf.cols.start}]") for leaf in node.leaves()]
        cache[key] = found
    return found


def trace_to_graph(tracer: KernelTracer, engine: StfEngine | None = None) -> TaskGraph:
    """Replay a kernel trace into a fine-grained task DAG via STF inference.

    Pass an engine with ``racecheck`` enabled to screen the leaf handles
    for memory aliasing while the trace replays (the kernels already ran
    during tracing, so per-task fingerprints do not apply here).
    """
    engine = engine or StfEngine(mode="eager")
    cache: dict = {}
    for rec in tracer.records:
        accesses = []
        seen = set()
        for node in rec.reads:
            for h in _leaf_handles(engine, node, cache):
                if h.id not in seen:
                    seen.add(h.id)
                    accesses.append((h, AccessMode.R))
        for node in rec.writes:
            for h in _leaf_handles(engine, node, cache):
                # A handle both read and written is RW; drop the R entry.
                accesses = [(hh, m) for hh, m in accesses if hh.id != h.id]
                seen.add(h.id)
                accesses.append((h, AccessMode.RW))
        engine.insert_task(
            rec.kind, None, accesses, seconds=rec.seconds, flops=rec.flops
        )
    return engine.wait_all()


@dataclass
class HMatFactorizationInfo:
    """Fine-grain DAG of a pure H-LU plus simulation access."""

    graph: TaskGraph
    racecheck: RaceChecker | None = None

    @property
    def n_tasks(self) -> int:
        return len(self.graph)

    @property
    def n_dependencies(self) -> int:
        return self.graph.n_edges()

    def sequential_seconds(self) -> float:
        return self.graph.total_work("seconds")

    def simulate(
        self,
        nworkers: int,
        scheduler: str = "lws",
        *,
        overheads: RuntimeOverheadModel | None = None,
        cost_attr: str = "seconds",
        cost_scale: float = 1.0,
    ) -> SimulationResult:
        return simulate(
            self.graph,
            nworkers,
            scheduler,
            overheads=overheads,
            cost_attr=cost_attr,
            cost_scale=cost_scale,
        )


class HMatSolver:
    """Global H-matrix LU solver (classical H-matrix, no tiling)."""

    def __init__(
        self,
        kernel,
        points: np.ndarray,
        *,
        eps: float = 1e-4,
        leaf_size: int = 64,
        eta: float = 2.0,
        method: str = "aca",
        admissibility=None,
        accumulate: bool = True,
        racecheck: bool = False,
        exec_mode: str = "eager",
        nworkers: int = 1,
        scheduler: str = "lws",
    ) -> None:
        """``admissibility=WeakAdmissibility()`` yields the HODLR / Block-
        Separable structure of the related-work section (every off-diagonal
        block low-rank); the default is HMAT-OSS's eta-strong condition.
        ``accumulate`` buffers trailing-update roundings during the H-LU
        (see :class:`~repro.hmatrix.UpdateAccumulator`); ``False`` keeps the
        eager one-rounding-per-update arithmetic.  ``racecheck`` screens the
        fine-grain leaf handles for memory aliasing while the kernel trace
        replays through the STF engine (eager-only, so it is incompatible
        with ``exec_mode="threaded"``).

        ``exec_mode="threaded"`` assembles the global H-matrix with one task
        per block-cluster-tree leaf, run by a
        :class:`~repro.runtime.ThreadedExecutor` over ``nworkers`` workers
        under the named ``scheduler`` policy.  The recursive H-LU itself
        stays serial — its fine-grain dependencies are exactly what the
        paper's Tile-H formulation removes — so threading here parallelises
        assembly only."""
        if exec_mode not in ("eager", "threaded"):
            raise ValueError(f"unknown exec_mode {exec_mode!r}")
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        if scheduler not in SCHEDULER_NAMES:
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if racecheck and exec_mode == "threaded":
            raise ValueError(
                "racecheck is eager-only: per-task fingerprints require "
                "kernels to run at submission"
            )
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        self.eps = eps
        self.accumulate = accumulate
        self.racecheck = racecheck
        self.exec_mode = exec_mode
        self.nworkers = nworkers
        self.scheduler = scheduler
        self.tree = build_cluster_tree(self.points, leaf_size=leaf_size)
        adm = admissibility if admissibility is not None else StrongAdmissibility(eta=eta)
        block = build_block_cluster_tree(self.tree, self.tree, adm)
        cfg = AssemblyConfig(eps=eps, method=method)
        #: Trace/graph of the threaded leaf assembly (None under eager).
        self.assembly_trace = None
        self.assembly_graph = None
        if exec_mode == "threaded":
            engine = StfEngine(mode="deferred")
            executor = ThreadedExecutor(nworkers, scheduler=scheduler)
            self.matrix = assemble_hmatrix_tasks(
                kernel, self.points, block, cfg, engine=engine, executor=executor
            )
            self.assembly_trace = executor.trace
            self.assembly_graph = engine.graph
        else:
            self.matrix = assemble_hmatrix(kernel, self.points, block, cfg)
        from ..obs.instrument import current as _current_probe

        probe = _current_probe()
        if probe is not None:
            probe.h_bytes_delta(self.matrix.storage() * self.matrix.dtype.itemsize)
        self._factorized = False

    # -- queries -------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.matrix.shape[0]

    @property
    def perm(self) -> np.ndarray:
        return self.tree.perm

    def compression_ratio(self) -> float:
        """Storage over dense storage — constant w.r.t. NB by construction
        (the flat dashed line of the paper's Fig. 4)."""
        return self.matrix.compression_ratio()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` in original ordering (pre-factorisation)."""
        if self._factorized:
            raise RuntimeError("matrix content was overwritten by factorize()")
        out = np.zeros_like(np.asarray(x), dtype=np.promote_types(self.matrix.dtype, np.asarray(x).dtype))
        out[self.perm] = self.matrix.matvec(np.asarray(x)[self.perm])
        return out

    # -- factorisation / solve ---------------------------------------------------
    def factorize(self) -> HMatFactorizationInfo:
        """Recursive H-LU with kernel tracing; returns the fine-grain DAG."""
        if self._factorized:
            raise RuntimeError("factorize() called twice")
        tracer = KernelTracer()
        prev = set_tracer(tracer)
        try:
            if self.accumulate:
                from ..hmatrix import UpdateAccumulator

                with UpdateAccumulator(self.eps) as acc:
                    hgetrf(self.matrix, self.eps, acc)
            else:
                hgetrf(self.matrix, self.eps)
        finally:
            set_tracer(prev)
        self._factorized = True
        engine = StfEngine(mode="eager", racecheck=True) if self.racecheck else StfEngine(mode="eager")
        graph = trace_to_graph(tracer, engine)
        return HMatFactorizationInfo(graph=graph, racecheck=engine.racecheck)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` in original ordering (vector or panel)."""
        if not self._factorized:
            raise RuntimeError("call factorize() before solve()")
        b = np.asarray(b)
        x = hlu_solve(self.matrix, b[self.perm])
        out = np.empty_like(x)
        out[self.perm] = x
        return out

    def gesv(self, b: np.ndarray) -> np.ndarray:
        if not self._factorized:
            self.factorize()
        return self.solve(b)
