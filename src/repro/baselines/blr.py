"""Block Low-Rank (BLR) baseline (Section III related work).

BLR flattens the hierarchy entirely: the matrix is an ``nt x nt`` grid of
tiles, each stored either dense or as a single low-rank block — no nesting.
It trades "slightly higher time and memory costs in exchange for superior
simplicity" (the paper, citing Amestoy et al.).  Here it falls out of the
Tile-H machinery by forcing every tile's block tree to stop at the top
level: the tiled LU, solver and simulation paths are shared, which makes the
format comparison in the ablation benches apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from ..core.build import build_tile_h
from ..core.clustering import TileHClustering
from ..core.descriptor import TileHDesc
from ..core.solver import TileHConfig, TileHMatrix
from ..hmatrix import (
    Admissibility,
    BlockClusterTree,
    StrongAdmissibility,
    ntiles_recursive,
)

__all__ = ["build_blr", "BLRMatrix"]


def _flat_clustering(
    points: np.ndarray,
    nb: int,
    admissibility: Admissibility,
) -> TileHClustering:
    """Tile clustering whose block trees are single leaves (dense or Rk)."""
    root, tiles = ntiles_recursive(points, nb, leaf_size=max(nb, 1))
    nt = len(tiles)
    block_trees = []
    for i in range(nt):
        for j in range(nt):
            adm = admissibility.is_admissible(tiles[i], tiles[j])
            block_trees.append(
                BlockClusterTree(rows=tiles[i], cols=tiles[j], admissible=adm)
            )
    return TileHClustering(
        root=root, tiles=tiles, block_trees=block_trees, admissibility=admissibility, nb=nb
    )


def build_blr(
    kernel,
    points: np.ndarray,
    nb: int,
    *,
    eps: float = 1e-4,
    eta: float = 2.0,
    method: str = "aca",
) -> TileHDesc:
    """Assemble the kernel matrix in flat BLR format.

    Admissible tile pairs (eta-strong condition on the tile clusters) become
    single Rk blocks, everything else a dense tile.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    cl = _flat_clustering(pts, nb, StrongAdmissibility(eta=eta))
    return build_tile_h(kernel, pts, nb, eps=eps, method=method, clustering=cl)


class BLRMatrix(TileHMatrix):
    """BLR matrix with the shared tiled-LU solver interface."""

    @classmethod
    def build(cls, kernel, points: np.ndarray, config: TileHConfig | None = None) -> "BLRMatrix":
        cfg = config or TileHConfig()
        desc = build_blr(
            kernel, points, cfg.nb, eps=cfg.eps, eta=cfg.eta, method=cfg.method
        )
        return cls(desc, cfg)
