"""Figure 6 — multicore LU times, small dimensions (N = 10K, 20K, 40K).

The paper plots LU execution time against thread count {1, 2, 3, 9, 18,
36 (35)} for three StarPU strategies (ws, lws, prio) of H-Chameleon against
the fine-grained HMAT implementation, in real (d) and complex (z) double
precision, with NB per its captions (d: 250/500/1000, z: 500/500/1000).

Reproduction: factorisations execute for real (sequential numerics with
per-task measured costs); every (scheduler, p) point replays the recorded
DAG on p virtual workers with StarPU-like per-task/per-dependency runtime
overheads.  Expected shapes: all three schedulers close, prio generally
best; H-Chameleon scales better in the real case (cheap kernels, fine-grain
dependency handling dominates HMAT), while HMAT is more competitive in the
complex case (expensive kernels hide the dependency overhead).
"""

from __future__ import annotations

import pytest

from repro.analysis import paper_nb, run_parallel_experiment, series_by
from repro.analysis.experiments import PAPER_THREADS

PAPER_N = (10_000, 20_000, 40_000)
EPS = 1e-4


@pytest.mark.parametrize("precision", ["d", "z"])
def test_fig6_parallel_small(benchmark, scale, emit, precision):
    def sweep():
        rows = []
        for pn in PAPER_N:
            n = scale.n(pn)
            # nt <= 24: enough parallel slack that the largest-N crossover
            # margin is robust to measurement noise, while tiles stay large
            # enough that Python dispatch does not dominate task cost.
            nb = scale.nb(paper_nb(pn, precision), floor=max(64, n // 24))
            rows.extend(
                run_parallel_experiment(
                    precision,
                    n,
                    nb,
                    eps=EPS,
                    leaf_size=scale.nb(500),
                    threads=PAPER_THREADS,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"fig6_parallel_small_{precision}",
        ["version", "precision", "N", "NB", "threads", "LU seconds"],
        [[r.version, r.precision, r.n, r.nb, r.threads, r.seconds] for r in rows],
        title=f"Figure 6 reproduction ({precision}): LU time vs threads, small N",
    )

    by_n = {}
    for r in rows:
        by_n.setdefault(r.n, []).append(r)
    n_max = max(by_n)
    for n, sub in by_n.items():
        series = series_by(sub, "version", "threads", "seconds")
        # Every variant gets faster with threads (scalability).
        for version, pts in series.items():
            times = dict(pts)
            assert times[36] < times[1], f"{version} did not scale at N={n}"
        # The three H-Chameleon schedulers stay close to each other
        # ("in general, the three variants deliver similar execution times").
        at36 = {v: dict(p)[36] for v, p in series.items() if v != "hmat"}
        assert max(at36.values()) <= 3.0 * min(at36.values())
        if precision == "d":
            hmat36 = dict(series["hmat"])[36]
            best36 = min(at36.values())
            if n == n_max:
                # Real case at full thread count: H-Chameleon beats HMAT
                # (fine-grain dependency handling dominates HMAT's cheap
                # tasks).  At reproduction scale the smallest problems use
                # tiles so small that Python dispatch inflates the Tile-H
                # kernel costs (the paper's own "overhead of memory and
                # required flops" effect, amplified), so the crossover is
                # asserted where tiles carry real work: the largest N.
                assert best36 < hmat36, (
                    f"expected H-Chameleon to win the real case at N={n}: "
                    f"{best36:.4f}s vs HMAT {hmat36:.4f}s"
                )
            else:
                # Smaller sizes: competitive within the work-inflation factor.
                assert best36 < 4.0 * hmat36
