"""Ablation — distributed-memory outlook (the paper's Section VI).

"For future work, we plan to study the behavior of this approach for the
distributed case, where the main challenge is to correctly handle
communications, when the size of the structures, depending on the ranks of
matrices, cannot be known statically.  The distributed H-Matrices
implementations are also known to be largely unbalanced."

This bench quantifies both statements on the Tile-H LU DAG: tile-to-node
mappings (1-D cyclic, 2-D cyclic, greedy storage-balanced) against cluster
sizes, reporting makespan, load imbalance and the actual (rank-dependent)
communication volumes.
"""

from __future__ import annotations

import numpy as np

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import (
    DistributedMachine,
    block_cyclic_1d,
    block_cyclic_2d,
    greedy_balanced,
    simulate_distributed,
    tile_h_distribution,
)

PAPER_N = 40_000
PAPER_NB = 2500
EPS = 1e-4


def test_abl_distributed(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nb = scale.nb(PAPER_NB, floor=64)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def factorize():
        a = TileHMatrix.build(
            kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=min(scale.nb(500), nb))
        )
        info = a.factorize()
        return a, info

    a, info = benchmark.pedantic(factorize, rounds=1, iterations=1)
    nt = a.nt
    itemsize = np.dtype(a.desc.super.dtype).itemsize
    tile_bytes = {
        (i, j): a.desc.super.get_blktile(i, j).storage() * float(itemsize)
        for i in range(nt)
        for j in range(nt)
    }

    rows = []
    results = {}
    for nodes, wpn in ((1, 36), (2, 18), (4, 9)):
        machine = DistributedMachine(nodes=nodes, workers_per_node=wpn, bandwidth=5e9)
        grid_p = 1 if nodes == 1 else 2
        grid_q = nodes // grid_p
        mappings = {
            "1d-cyclic": block_cyclic_1d(nt, nodes),
            "2d-cyclic": block_cyclic_2d(nt, grid_p, grid_q),
            "greedy": greedy_balanced(tile_bytes, nodes),
        }
        for name, mapping in mappings.items():
            hn, hb = tile_h_distribution(info.graph, mapping)
            r = simulate_distributed(info.graph, hn, machine, handle_bytes=hb)
            rows.append(
                [
                    nodes,
                    name,
                    r.makespan,
                    round(r.load_imbalance, 3),
                    round(r.total_comm_bytes / 1e6, 2),
                    r.n_messages,
                ]
            )
            results[(nodes, name)] = r
    emit(
        "abl_distributed",
        ["nodes", "mapping", "makespan s", "load imbalance", "comm MB", "messages"],
        rows,
        title=f"Ablation: distributed Tile-H LU (N={n}, NB={nb}, 36 cores total)",
    )

    # Single-node runs move no data.
    for name in ("1d-cyclic", "2d-cyclic", "greedy"):
        assert results[(1, name)].total_comm_bytes == 0.0
    # Distribution costs communication: makespan does not improve over the
    # single fat node at equal core count.
    base = results[(1, "2d-cyclic")].makespan
    for nodes in (2, 4):
        for name in ("1d-cyclic", "2d-cyclic", "greedy"):
            assert results[(nodes, name)].makespan >= base - 1e-9
    # Rank-dependent tile sizes make cyclic mappings imbalanced; greedy
    # storage balancing is at least as balanced as 1-D cyclic.
    g4 = results[(4, "greedy")].load_imbalance
    c4 = results[(4, "1d-cyclic")].load_imbalance
    assert g4 <= c4 * 1.15
