"""Perf regression guard: wall-clock Tile-H LU solves and ACA assembly.

Unlike the figure benches (which replay measured DAGs through the
simulator), this module times the *real* sequential kernels end to end —
the numbers that accumulator-based arithmetic, the vectorised ACA loop and
the packed-triangle panel solves are supposed to move.  Results land in
``BENCH_lu.json`` at the repository root so successive PRs can be compared:

    [{"case": "lu_d", "n": 2048, "nb": 256, "seconds": ..., "fwd_error": ...}, ...]

``seconds`` is the minimum over ``REPRO_BENCH_REPS`` repetitions (minimum,
not mean: the machine-noise floor is the quantity regressions shift).
Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the problem sizes
so the guard runs in seconds while still exercising every code path.

Run standalone (``python benchmarks/bench_perf_regression.py``) or through
pytest (``pytest benchmarks/bench_perf_regression.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.baselines import HMatSolver
from repro.core import TileHConfig, TileHMatrix
from repro.core.algorithms import apply_bottom_level_priorities, tiled_getrf_tasks
from repro.geometry import cylinder_cloud, make_kernel, streamed_matvec
from repro.obs import Instrumentation, build_run_report
from repro.runtime import NestedPolicy, RuntimeOverheadModel, StfEngine, simulate
from repro.hmatrix import (
    AssemblyConfig,
    StrongAdmissibility,
    assemble_hmatrix,
    build_block_cluster_tree,
    build_cluster_tree,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

EPS = 1e-4
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
# Smoke runs (CI) write to the untracked benchmarks/out/ scratch path: the
# tracked BENCH_lu.json holds full-mode numbers and a smoke run must never
# clobber them (CI asserts the tracked file stays byte-identical).
OUT_PATH = (
    REPO_ROOT / "benchmarks" / "out" / "BENCH_lu.json"
    if SMOKE
    else REPO_ROOT / "BENCH_lu.json"
)
REPS = int(os.environ.get("REPRO_BENCH_REPS", "1" if SMOKE else "3"))

#: (case, n, nb, precision) — smoke mode shrinks n, keeping nt >= 4.
_LU_CASES = (
    [("lu_d", 512, 128, "d"), ("lu_z", 384, 96, "z")]
    if SMOKE
    else [("lu_d", 2048, 256, "d"), ("lu_z", 1024, 128, "z")]
)
_ACA_N = 512 if SMOKE else 2048
_FUSED_N, _FUSED_NB = (512, 128) if SMOKE else (1536, 192)
#: (n, nb) x worker counts for the process-executor rows.
_PROCESS_CASES = [(512, 128)] if SMOKE else [(512, 128), (1024, 128)]
_PROCESS_WORKERS = [1, 2] if SMOKE else [1, 2, 4]
#: Virtual worker counts for the HMAT / Tile-H / nested crossover sweep.
_CROSSOVER_WORKERS = (1, 2, 4, 8, 16, 32)
_CROSSOVER_N, _CROSSOVER_NB = (512, 128)
#: Deterministic flop->seconds scale for simulated makespans (the measured
#: ~2.7 GF/s NumPy/BLAS leaf-kernel rate; see analysis.autotune).
_FLOP_RATE = 2.7e9


def _time_lu(case: str, n: int, nb: int, precision: str, *, accumulate: bool = True) -> dict:
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace" if precision == "d" else "helmholtz", pts)
    cfg = TileHConfig(nb=nb, eps=EPS, leaf_size=min(48, nb), accumulate=accumulate)

    # The reference build doubles as the profiled run: the probe's H-memory
    # gauge yields the assembled peak bytes without touching the timed reps.
    with Instrumentation() as probe:
        ref = TileHMatrix.build(kern, pts, cfg)
    peak_h_bytes = int(probe.registry.gauge("h.peak_bytes"))
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    if precision == "z":
        x = x + 1j * rng.standard_normal(n)
    b = ref.matvec(x)

    best = np.inf
    fwd_error = None
    for _ in range(REPS):
        a = TileHMatrix.build(kern, pts, cfg)
        t0 = time.perf_counter()
        a.factorize()
        best = min(best, time.perf_counter() - t0)
        if fwd_error is None:
            xhat = a.solve(b)
            fwd_error = float(np.linalg.norm(xhat - x) / np.linalg.norm(x))
    return {"case": case, "n": n, "nb": nb, "seconds": best, "fwd_error": fwd_error,
            "peak_h_bytes": peak_h_bytes}


def _time_aca(n: int) -> dict:
    """Full H-assembly of a strong-admissibility matrix: ACA-dominated."""
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    tree = build_cluster_tree(pts, leaf_size=48)
    block = build_block_cluster_tree(tree, tree, StrongAdmissibility(eta=2.0))
    best = np.inf
    for _ in range(REPS):
        t0 = time.perf_counter()
        h = assemble_hmatrix(kern, pts, block, AssemblyConfig(eps=EPS, method="aca"))
        best = min(best, time.perf_counter() - t0)
    # Assembly accuracy ||A_H - A||_F / ||A||_F on a sampled principal block
    # (the full dense A is too big off smoke mode).  The H-matrix lives in
    # cluster order, so the exact block is evaluated at permuted points.
    rng = np.random.default_rng(0)
    idx = np.sort(rng.choice(n, size=min(256, n), replace=False))
    approx = h.to_dense()[np.ix_(idx, idx)]
    ppts = pts[tree.perm[idx]]
    exact = kern(ppts, ppts)
    fwd_error = float(np.linalg.norm(approx - exact) / np.linalg.norm(exact))
    return {
        "case": "aca_assembly",
        "n": n,
        "nb": 0,
        "seconds": best,
        "fwd_error": fwd_error,
    }


def _time_fused(n: int, nb: int) -> list[dict]:
    """Fused assembly+LU: eager submission vs. the threaded executor.

    Both rows use ``accumulate=False`` (the accumulator is eager-only), so
    the two paths are numerically identical and any fwd_error gap is a bug.
    On a single-core host the threaded row measures overhead, not speedup —
    the wall-time comparison is informational, never asserted.
    """
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    rows = []
    nworkers = min(4, os.cpu_count() or 1)
    for case, cfg in [
        ("fused_eager", TileHConfig(nb=nb, eps=EPS, leaf_size=min(48, nb),
                                    accumulate=False)),
        ("fused_threaded", TileHConfig(nb=nb, eps=EPS, leaf_size=min(48, nb),
                                       accumulate=False, exec_mode="threaded",
                                       nworkers=nworkers, scheduler="lws")),
    ]:
        best = np.inf
        fwd_error = None
        for _ in range(REPS):
            t0 = time.perf_counter()
            a, _info = TileHMatrix.build_factorize(kern, pts, cfg)
            best = min(best, time.perf_counter() - t0)
            if fwd_error is None:
                b = streamed_matvec(kern, pts, x)
                xhat = a.solve(b)
                fwd_error = float(np.linalg.norm(xhat - x) / np.linalg.norm(x))
        row = {"case": case, "n": n, "nb": nb, "seconds": best,
               "fwd_error": fwd_error}
        # One extra profiled run (outside the timed reps) records the
        # scheduler behaviour and peak H-matrix memory behind the wall time.
        with Instrumentation() as probe:
            _a, info = TileHMatrix.build_factorize(kern, pts, cfg)
        report = build_run_report(probe=probe, trace=info.trace, graph=info.graph)
        row["peak_h_bytes"] = int(report["hmatrix"].get("peak_bytes", 0))
        if cfg.exec_mode == "threaded":
            row["steals"] = report["scheduler"]["steals"]
            row["steal_attempts"] = report["scheduler"]["steal_attempts"]
            row["idle_fraction"] = round(1.0 - report["totals"]["utilization"], 4)
        rows.append(row)
    return rows


def _time_fused_process() -> list[dict]:
    """Fused assembly+LU on the process executor, swept over worker counts.

    Every row records its eager reference error alongside (``fwd_error_eager``)
    — with ``accumulate=False`` the two must agree to machine identity at any
    worker count, which the test asserts.  ``steals``/``idle_fraction`` come
    from a profiled extra run and ``ipc_bytes`` counts the pickled skeleton
    traffic over the worker pipes (tile payloads travel via shared memory and
    are charged to ``process.shm_bytes``, not here).  Wall-clock speedup is
    informational: on a single-core host the extra workers only add overhead.
    """
    rows = []
    for n, nb in _PROCESS_CASES:
        pts = cylinder_cloud(n)
        kern = make_kernel("laplace", pts)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(n)
        b = streamed_matvec(kern, pts, x)
        cfg_eager = TileHConfig(nb=nb, eps=EPS, leaf_size=min(48, nb), accumulate=False)
        ref, _ = TileHMatrix.build_factorize(kern, pts, cfg_eager)
        fwd_eager = float(np.linalg.norm(ref.solve(b) - x) / np.linalg.norm(x))
        for nw in _PROCESS_WORKERS:
            cfg = TileHConfig(nb=nb, eps=EPS, leaf_size=min(48, nb), accumulate=False,
                              exec_mode="process", nworkers=nw, scheduler="lws")
            best = np.inf
            fwd_error = None
            for _ in range(REPS):
                t0 = time.perf_counter()
                a, _info = TileHMatrix.build_factorize(kern, pts, cfg)
                best = min(best, time.perf_counter() - t0)
                if fwd_error is None:
                    xhat = a.solve(b)
                    fwd_error = float(np.linalg.norm(xhat - x) / np.linalg.norm(x))
            with Instrumentation() as probe:
                _a, info = TileHMatrix.build_factorize(kern, pts, cfg)
            report = build_run_report(probe=probe, trace=info.trace, graph=info.graph)
            rows.append({
                "case": "fused_process", "n": n, "nb": nb, "nworkers": nw,
                "seconds": best, "fwd_error": fwd_error, "fwd_error_eager": fwd_eager,
                "steals": report["scheduler"]["steals"],
                "steal_attempts": report["scheduler"]["steal_attempts"],
                "idle_fraction": round(1.0 - report["totals"]["utilization"], 4),
                "ipc_bytes": int(report.get("process", {}).get("ipc_bytes", 0)),
                "dispatch_batches": int(
                    report.get("process", {}).get("dispatch_batches", 0)
                ),
            })
    return rows


def _time_fused_nested(n: int, nb: int) -> dict:
    """Fused assembly+LU with nested task expansion (threaded executor).

    Records wall seconds plus the deterministic nested-expansion proxies:
    expanded-kernel / subtask counts and the flop-costed critical path of
    the contracted (opaque-equivalent) vs. expanded graph.  The forward
    error must match the opaque eager reference bit-for-bit
    (``accumulate=False``); the test asserts both.
    """
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n)
    b = streamed_matvec(kern, pts, x)
    leaf = min(48, nb)
    ref, _ = TileHMatrix.build_factorize(
        kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=leaf, accumulate=False)
    )
    fwd_eager = float(np.linalg.norm(ref.solve(b) - x) / np.linalg.norm(x))
    cfg = TileHConfig(
        nb=nb, eps=EPS, leaf_size=leaf, accumulate=False,
        exec_mode="threaded", nworkers=min(4, os.cpu_count() or 1),
        scheduler="lws", nested=True, nested_min_leaf=leaf,
    )
    best = np.inf
    fwd_error = None
    info = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        a, info = TileHMatrix.build_factorize(kern, pts, cfg)
        best = min(best, time.perf_counter() - t0)
        if fwd_error is None:
            xhat = a.solve(b)
            fwd_error = float(np.linalg.norm(xhat - x) / np.linalg.norm(x))
    nested = info.nested
    return {
        "case": "fused_nested", "n": n, "nb": nb,
        "nworkers": cfg.nworkers, "seconds": best,
        "fwd_error": fwd_error, "fwd_error_eager": fwd_eager,
        "expanded_tasks": nested["expanded_tasks"],
        "subtasks": nested["subtasks"],
        "critical_path_before": nested["critical_path_before"],
        "critical_path_after": nested["critical_path_after"],
    }


def _crossover_sweep(n: int, nb: int) -> list[dict]:
    """Pure-HMAT vs. opaque Tile-H vs. nested Tile-H, simulated makespans.

    The deterministic proxy behind the nested-parallelism claim: all three
    DAGs are replayed on virtual workers with flop-modelled task costs
    (scaled to seconds at :data:`_FLOP_RATE`) under an overhead-free model,
    so the comparison isolates dependency structure — the quantity nested
    expansion changes.  The opaque Tile-H baseline is the *contracted*
    nested graph (each expansion's subtasks collapsed back into one task
    with summed flops), which keeps both sides under the identical flop
    model.  At high worker counts coarse Tile-H tasks starve the machine
    and the format trails pure HMAT; nested expansion must recover that
    headroom — the test asserts it.
    """
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    leaf = min(48, nb)
    a = TileHMatrix.build(
        kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=leaf, accumulate=False)
    )
    eng = StfEngine(mode="deferred", nested=NestedPolicy(min_leaf=leaf))
    graph = tiled_getrf_tasks(a.desc, eng, accumulate=False)
    apply_bottom_level_priorities(graph, "flops")
    contracted = eng.nested_stats.contract(graph)
    apply_bottom_level_priorities(contracted, "flops")
    hinfo = HMatSolver(kern, pts, eps=EPS, leaf_size=leaf).factorize()
    apply_bottom_level_priorities(hinfo.graph, "flops")
    variants = [
        ("hmat", hinfo.graph),
        ("tile_h", contracted),
        ("nested", graph),
    ]
    rows = []
    for p in _CROSSOVER_WORKERS:
        row = {"case": "crossover", "n": n, "nb": nb, "nworkers": p}
        for name, g in variants:
            r = simulate(
                g, p, "prio", overheads=RuntimeOverheadModel.zero(),
                cost_attr="flops", cost_scale=1.0 / _FLOP_RATE,
                keep_trace=False,
            )
            row[f"makespan_{name}"] = r.makespan
            if p == _CROSSOVER_WORKERS[0]:
                row[f"critical_path_{name}"] = r.critical_path
        rows.append(row)
    return rows


def run() -> list[dict]:
    rows = [_time_lu(case, n, nb, precision) for case, n, nb, precision in _LU_CASES]
    rows.append(_time_aca(_ACA_N))
    rows.extend(_time_fused(_FUSED_N, _FUSED_NB))
    rows.extend(_time_fused_process())
    rows.append(_time_fused_nested(_FUSED_N, _FUSED_NB))
    rows.extend(_crossover_sweep(_CROSSOVER_N, _CROSSOVER_NB))
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    return rows


def test_perf_regression():
    rows = run()
    assert OUT_PATH.exists()
    by_case = {row["case"]: row for row in rows}
    for row in rows:
        if row["case"] == "crossover":
            continue  # simulated makespans, no wall-clock column
        assert row["seconds"] > 0
        if row["case"].startswith(("lu", "fused")):
            # eps=1e-4 factorisation: forward error can exceed eps through
            # conditioning, but an order-of-magnitude blowup is a bug.
            assert row["fwd_error"] < 1e-2, row
    # Sampled-block assembly error must sit near eps (was a compression
    # ratio before, which said nothing about accuracy).
    assert by_case["aca_assembly"]["fwd_error"] < 20 * EPS, by_case["aca_assembly"]
    # Same DAG, same arithmetic: eager and threaded fused runs agree exactly.
    # (No wall-time assertion — single-core CI hosts measure overhead only.)
    assert np.isclose(
        by_case["fused_eager"]["fwd_error"],
        by_case["fused_threaded"]["fwd_error"],
        rtol=1e-9, atol=0.0,
    ), (by_case["fused_eager"], by_case["fused_threaded"])
    # Process-executor runs are bit-identical to eager at every worker count
    # (accumulate=False serialises all per-tile updates in submission order).
    process_rows = [r for r in rows if r["case"] == "fused_process"]
    assert process_rows, "no fused_process rows produced"
    for r in process_rows:
        assert np.isclose(r["fwd_error"], r["fwd_error_eager"], rtol=1e-12, atol=0.0), r
        assert r["ipc_bytes"] > 0, r
        # Batched dispatch always sends at least one entry per pipe write,
        # never more writes than dispatched tasks.
        assert 0 < r["dispatch_batches"], r
    # Nested expansion: numerically identical to the opaque eager run and a
    # strictly shorter flop-costed critical path (the deterministic claim —
    # wall time on a 1-core host measures overhead, not speedup).
    nested = by_case["fused_nested"]
    assert np.isclose(
        nested["fwd_error"], nested["fwd_error_eager"], rtol=1e-12, atol=0.0
    ), nested
    assert nested["subtasks"] > nested["expanded_tasks"] > 0, nested
    assert nested["critical_path_after"] < nested["critical_path_before"], nested
    # Crossover: where coarse Tile-H trails the fine-grain HMAT DAG (high
    # virtual worker counts), nested expansion must claw the makespan back.
    cross = [r for r in rows if r["case"] == "crossover"]
    assert cross, "no crossover rows produced"
    trailing = [r for r in cross if r["makespan_tile_h"] > r["makespan_hmat"]]
    assert trailing, f"opaque Tile-H never trailed HMAT: {cross}"
    for r in trailing:
        assert r["makespan_nested"] < r["makespan_tile_h"], r
    first = cross[0]
    assert first["critical_path_nested"] < first["critical_path_tile_h"], first


if __name__ == "__main__":
    for r in run():
        if r["case"] == "crossover":
            print(
                f"{r['case']:>12}  n={r['n']:>5} nb={r['nb']:>4}  p={r['nworkers']:>2}  "
                f"hmat={r['makespan_hmat']:.4f}s  tile_h={r['makespan_tile_h']:.4f}s  "
                f"nested={r['makespan_nested']:.4f}s"
            )
        else:
            print(
                f"{r['case']:>12}  n={r['n']:>5} nb={r['nb']:>4}  "
                f"{r['seconds']:8.3f}s  fwd_err={r['fwd_error']:.3e}"
            )
    print(f"\nwrote {OUT_PATH}")
