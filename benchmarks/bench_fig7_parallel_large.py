"""Figure 7 — multicore LU times, larger dimensions (N = 80K, 100K, 200K).

Same protocol as Fig. 6 at the paper's larger sizes (NB per its captions:
d 1000/1000/2000, z 2000/2000/4000).  At these sizes the paper's headline
holds most clearly: the priority schedulers win, and H-Chameleon's
coarse-grain DAG scales while HMAT pays for its dependency volume in the
real-arithmetic case.

To keep the default run affordable this bench reproduces the two smaller
columns (80K, 100K); add 200K by raising REPRO_SCALE selectivity if wanted.
"""

from __future__ import annotations

import pytest

from repro.analysis import paper_nb, run_parallel_experiment, series_by
from repro.analysis.experiments import PAPER_THREADS

PAPER_N = (80_000, 100_000)
EPS = 1e-4


@pytest.mark.parametrize("precision", ["d", "z"])
def test_fig7_parallel_large(benchmark, scale, emit, precision):
    def sweep():
        rows = []
        for pn in PAPER_N:
            n = scale.n(pn)
            # nt = 32 at these sizes: enough parallel slack for the 36-thread
            # point (nt = 16 leaves the critical path dominated by the fat
            # early-panel tiles) while keeping tiles large enough that Python
            # task dispatch does not distort the Tile-H/HMAT work comparison.
            nb = scale.nb(paper_nb(pn, precision), floor=max(64, n // 32))
            rows.extend(
                run_parallel_experiment(
                    precision,
                    n,
                    nb,
                    eps=EPS,
                    leaf_size=scale.nb(500),
                    threads=PAPER_THREADS,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"fig7_parallel_large_{precision}",
        ["version", "precision", "N", "NB", "threads", "LU seconds"],
        [[r.version, r.precision, r.n, r.nb, r.threads, r.seconds] for r in rows],
        title=f"Figure 7 reproduction ({precision}): LU time vs threads, large N",
    )

    by_n = {}
    for r in rows:
        by_n.setdefault(r.n, []).append(r)
    for n, sub in by_n.items():
        series = series_by(sub, "version", "threads", "seconds")
        for version, pts in series.items():
            times = dict(pts)
            assert times[36] < times[1], f"{version} did not scale at N={n}"
        at = {v: dict(p) for v, p in series.items()}
        best = min(at[v][36] for v in ("ws", "lws", "prio"))
        serial = min(at[v][1] for v in ("ws", "lws", "prio"))
        # Larger problems expose more parallelism.
        assert serial / best > 4.0, f"poor large-N scaling at N={n}"
        if precision == "d":
            # Real case: H-Chameleon wins at full thread count — HMAT's
            # dependency volume saturates the runtime core.
            assert best < at["hmat"][36], (
                f"expected H-Chameleon to win the real case at N={n}: "
                f"{best:.3f}s vs HMAT {at['hmat'][36]:.3f}s"
            )
        else:
            # Complex case: expensive kernels amortise HMAT's dependency
            # handling, so HMAT is competitive or better (the paper's "HMAT
            # performs better on the complex cases").
            assert at["hmat"][36] <= 2.0 * best
