"""Serving benchmark: micro-batched throughput and cold-vs-warm latency.

Drives a real :class:`~repro.service.SolveService` in-process (no HTTP — the
wire adds constant cost; the quantity under test is the pipeline) and writes
``BENCH_serve.json`` at the repository root:

* ``serve_batch`` rows — ``requests`` identical-fingerprint solves pushed
  through the service at micro-batch widths {1, 4, 8, 16} and 1/2 workers.
  ``batch=1`` is the one-at-a-time baseline; the paper-economics claim under
  test is that panel sweeps amortize the per-sweep tile/leaf traversal, so
  batched throughput at width >= 8 must be >= 2x the baseline.
* ``serve_cold`` / ``serve_warm`` rows — first request against an empty
  store (pays assembly + factorization) vs a repeat request against the
  warm store (pays only the panel solve): the factorization store's value
  in one number.
* ``serve_fleet`` rows — a closed-loop load generator (client threads with
  Poisson or bursty think times, Zipf-skewed hot/cold fingerprints, an
  80/20 interactive/batch lane mix with tight interactive deadlines)
  against a :class:`~repro.service.ServeFleet`: per-lane p50/p95 latency,
  shed rate, routing balance, and crash-requeue counts per arrival process.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the problem so the
bench runs in seconds.  Run standalone
(``python benchmarks/bench_serve.py``) or through pytest.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.service import (
    DeadlineExceededError,
    FactorizationStore,
    ProblemSpec,
    QueueFullError,
    ServeFleet,
    SolveService,
    build_solver,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
# Smoke runs (CI) write to the untracked benchmarks/out/ scratch path: the
# tracked BENCH_serve.json holds full-mode numbers and a smoke run must never
# clobber them (CI asserts the tracked file stays byte-identical).
OUT_PATH = (
    REPO_ROOT / "benchmarks" / "out" / "BENCH_serve.json"
    if SMOKE
    else REPO_ROOT / "BENCH_serve.json"
)
REPS = int(os.environ.get("REPRO_BENCH_REPS", "1" if SMOKE else "3"))

_N, _NB = (512, 128) if SMOKE else (2000, 256)
_REQUESTS = 32 if SMOKE else 64
_BATCHES = [1, 4, 8, 16]
_WORKERS = [1, 2]
#: Fleet load-generator shape.  Problems are deliberately smaller than the
#: single-service rows: the quantity under test is routing/admission
#: behaviour under load, not solve scale.
_FLEET_N, _FLEET_NB = (384, 96) if SMOKE else (800, 160)
_FLEET_SPECS = 3 if SMOKE else 5
_FLEET_REQUESTS = 48 if SMOKE else 240
_FLEET_CLIENTS = 4 if SMOKE else 8
_FLEET_WORKERS = 2
_ZIPF_S = 1.2  # key-popularity skew: rank-r spec drawn with p ~ r^-s
#: Executor for cold-start factorizations (every row records it): override
#: with REPRO_BENCH_EXEC=threaded/process to bench multicore cold builds.
_EXEC_MODE = os.environ.get("REPRO_BENCH_EXEC", "eager")

SPEC = ProblemSpec(kernel="laplace", n=_N, nb=_NB, eps=1e-6, leaf_size=64)


def _run_round(solver, rhs, *, batch: int, workers: int) -> dict:
    """Push all requests through one service configuration; min over REPS."""
    best = None
    for _ in range(REPS):
        svc = SolveService(
            FactorizationStore(),
            workers=workers,
            max_queue=len(rhs) + 1,
            max_batch=batch,
            # Generous coalescing window: submissions are microseconds apart,
            # so full batches form whenever batch > 1.
            max_delay=0.05 if batch > 1 else 0.0,
            solver_provider=lambda k, s: solver,
            exec_mode=_EXEC_MODE,
        )
        t0 = time.perf_counter()
        tickets = [svc.submit(SPEC, b) for b in rhs]
        for t in tickets:
            t.result(timeout=600)
        seconds = time.perf_counter() - t0
        stats = svc.stats()
        svc.close()
        if best is None or seconds < best[0]:
            best = (seconds, stats)
    seconds, stats = best
    lat = stats["latency_seconds"]
    return {
        "case": "serve_batch",
        "n": _N,
        "nb": _NB,
        "batch": batch,
        "workers": workers,
        "exec_mode": stats["executor"]["mode"],
        "exec_workers": stats["executor"]["nworkers"],
        "requests": len(rhs),
        "seconds": seconds,
        "throughput_rps": len(rhs) / seconds,
        "p50_ms": lat.get("p50", lat["mean"]) * 1e3,
        "p95_ms": lat.get("p95", lat["max"]) * 1e3,
        "mean_batch_width": stats["batch_size"]["mean"],
        "sweeps": stats["batch_size"]["count"],
    }


def _cold_vs_warm(tmp_store: Path, rhs0: np.ndarray) -> list[dict]:
    store = FactorizationStore(tmp_store)
    svc = SolveService(store, workers=1, exec_mode=_EXEC_MODE)
    t0 = time.perf_counter()
    svc.solve(SPEC, rhs0)
    cold = time.perf_counter() - t0
    warm = np.inf
    for _ in range(max(3, REPS)):
        t0 = time.perf_counter()
        svc.solve(SPEC, rhs0)
        warm = min(warm, time.perf_counter() - t0)
    stats = svc.stats()
    svc.close()
    executor = {"exec_mode": stats["executor"]["mode"],
                "exec_workers": stats["executor"]["nworkers"]}
    return [
        {"case": "serve_cold", "n": _N, "nb": _NB, "seconds": cold,
         "store_misses": stats["store"]["misses"], **executor},
        {"case": "serve_warm", "n": _N, "nb": _NB, "seconds": warm,
         "store_hits": stats["store"]["hits"],
         "speedup_vs_cold": cold / warm, **executor},
    ]


def _fleet_round(store_root: Path, *, arrivals: str) -> dict:
    """Closed-loop load generation against a 2-worker fleet.

    ``_FLEET_CLIENTS`` client threads each issue requests back to back:
    draw a spec by Zipf(``_ZIPF_S``) popularity, draw a lane (80%%
    interactive with a tight deadline, 20%% batch without), submit, wait,
    think, repeat.  ``arrivals`` shapes the think time: ``"poisson"`` is
    exponential think between requests; ``"burst"`` fires runs of 8
    back-to-back requests separated by long gaps (the worst case for
    deadline shedding — queueing delay spikes inside a burst).
    """
    specs = [
        ProblemSpec(kernel="laplace", n=_FLEET_N, nb=_FLEET_NB,
                    eps=1e-6 * (1.0 + 0.01 * i), leaf_size=48)
        for i in range(_FLEET_SPECS)
    ]
    ranks = np.arange(1, len(specs) + 1, dtype=float)
    probs = ranks ** -_ZIPF_S
    probs /= probs.sum()

    fleet = ServeFleet(
        _FLEET_WORKERS,
        store_root=store_root,
        max_delay=0.002,
        replicate_hot_after=max(4, _FLEET_REQUESTS // 16),
        exec_mode=_EXEC_MODE,
    )
    rng0 = np.random.default_rng(0)
    rhs = {i: rng0.standard_normal(_FLEET_N) for i in range(len(specs))}
    # Prewarm every fingerprint (cold builds are the store's business, not
    # the load generator's) and measure the warm service time to place the
    # interactive deadline: tight enough that burst backlogs shed, loose
    # enough that an unloaded fleet never does.
    warm = []
    for i, spec in enumerate(specs):
        fleet.solve(spec, rhs[i], lane="batch")
        t0 = time.perf_counter()
        fleet.solve(spec, rhs[i], lane="batch")
        warm.append(time.perf_counter() - t0)
    deadline_s = max(0.05, 6.0 * float(np.median(warm)))

    counter = threading.Lock()
    remaining = [_FLEET_REQUESTS]
    client_errors: list[BaseException] = []

    def client(cid: int) -> None:
        rng = np.random.default_rng(1000 + cid)
        burst_left = 0
        while True:
            with counter:
                if remaining[0] <= 0:
                    return
                remaining[0] -= 1
            i = int(rng.choice(len(specs), p=probs))
            interactive = rng.random() < 0.8
            try:
                ticket = fleet.submit(
                    specs[i], rhs[i],
                    lane="interactive" if interactive else "batch",
                    timeout=deadline_s if interactive else None,
                )
                ticket.wait(timeout=60.0)
            except (DeadlineExceededError, QueueFullError):
                pass  # typed shedding/backpressure: counted by fleet.stats()
            except BaseException as exc:  # noqa: BLE001 - surface in the parent
                with counter:
                    client_errors.append(exc)
                return
            if arrivals == "poisson":
                time.sleep(float(rng.exponential(0.2 * deadline_s)))
            else:  # burst: 8 back-to-back, then a long gap
                if burst_left > 0:
                    burst_left -= 1
                else:
                    burst_left = 7
                    time.sleep(float(rng.exponential(2.0 * deadline_s)))

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(c,)) for c in range(_FLEET_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    stats = fleet.stats()
    fleet.close()
    if client_errors:
        raise client_errors[0]

    lanes = stats["lanes"]
    admitted = sum(l["admitted"] for l in lanes.values())
    shed = sum(l["shed"] for l in lanes.values())
    rejected = sum(l["rejected"] for l in lanes.values())
    offered = admitted + shed + rejected
    row = {
        "case": "serve_fleet",
        "arrivals": arrivals,
        "n": _FLEET_N,
        "nb": _FLEET_NB,
        "fleet_workers": _FLEET_WORKERS,
        "clients": _FLEET_CLIENTS,
        "specs": len(specs),
        "zipf_s": _ZIPF_S,
        "deadline_ms": deadline_s * 1e3,
        "requests": _FLEET_REQUESTS,
        "seconds": seconds,
        "throughput_rps": admitted / seconds if seconds > 0 else 0.0,
        "shed_rate": shed / offered if offered else 0.0,
        "rejected": rejected,
        "requeues": stats["requeues"],
        "routing_balance": stats["routing"]["balance_ratio"],
        "routing_keys": stats["routing"]["keys"],
        "hot_keys": stats["replication"]["hot_keys"],
        "exec_mode": _EXEC_MODE,
    }
    for name, lane in lanes.items():
        row[f"{name}_completed"] = lane["completed"]
        row[f"{name}_shed"] = lane["shed"]
        if "p50_ms" in lane:
            row[f"{name}_p50_ms"] = lane["p50_ms"]
            row[f"{name}_p95_ms"] = lane["p95_ms"]
    return row


def run() -> list[dict]:
    rng = np.random.default_rng(0)
    rhs = [rng.standard_normal(_N) for _ in range(_REQUESTS)]
    solver = build_solver(SPEC)  # factorize once; rounds measure serving only

    rows = []
    for workers in _WORKERS:
        for batch in _BATCHES:
            rows.append(_run_round(solver, rhs, batch=batch, workers=workers))

    import tempfile

    with tempfile.TemporaryDirectory() as d:
        rows.extend(_cold_vs_warm(Path(d), rhs[0]))
    for arrivals in ("poisson", "burst"):
        with tempfile.TemporaryDirectory() as d:
            rows.append(_fleet_round(Path(d), arrivals=arrivals))
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    return rows


def test_bench_serve():
    rows = run()
    assert OUT_PATH.exists()
    by = {(r["case"], r.get("batch"), r.get("workers")): r for r in rows}
    base = by[("serve_batch", 1, 1)]
    batched = by[("serve_batch", 8, 1)]
    # The acceptance criterion: micro-batching at width >= 8 at least
    # doubles one-at-a-time throughput.
    ratio = batched["throughput_rps"] / base["throughput_rps"]
    assert ratio >= 2.0, f"batch-8 throughput only {ratio:.2f}x baseline"
    # Batches actually formed (otherwise the row measures nothing).
    assert batched["mean_batch_width"] > 4.0, batched
    cold = by[("serve_cold", None, None)]
    warm = by[("serve_warm", None, None)]
    # A warm store must skip the factorization entirely.
    assert warm["store_hits"] >= 1 and cold["store_misses"] == 1
    assert warm["seconds"] < cold["seconds"], (warm, cold)
    # Fleet rows: one per arrival process, every request accounted for
    # (completed + shed + rejected + expired == offered) and routing spread
    # over the fingerprints.  Shed rates are workload-dependent — recorded,
    # not asserted.
    fleet_rows = [r for r in rows if r["case"] == "serve_fleet"]
    assert {r["arrivals"] for r in fleet_rows} == {"poisson", "burst"}
    for r in fleet_rows:
        assert r["routing_keys"] >= 1
        assert r["interactive_completed"] + r["batch_completed"] > 0, r


if __name__ == "__main__":
    for r in run():
        if r["case"] == "serve_batch":
            print(
                f"batch={r['batch']:>2} workers={r['workers']}  "
                f"{r['throughput_rps']:8.1f} req/s  "
                f"p50 {r['p50_ms']:7.2f} ms  p95 {r['p95_ms']:7.2f} ms  "
                f"(width {r['mean_batch_width']:.1f}, {r['sweeps']} sweeps)"
            )
        elif r["case"] == "serve_fleet":
            print(
                f"fleet {r['arrivals']:>7}  {r['throughput_rps']:8.1f} req/s  "
                f"interactive p95 {r.get('interactive_p95_ms', float('nan')):7.2f} ms  "
                f"shed {r['shed_rate']:.1%}  balance {r['routing_balance']:.2f}x"
            )
        else:
            print(f"{r['case']:>11}  {r['seconds'] * 1e3:9.2f} ms")
    print(f"\nwrote {OUT_PATH}")
