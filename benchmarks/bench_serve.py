"""Serving benchmark: micro-batched throughput and cold-vs-warm latency.

Drives a real :class:`~repro.service.SolveService` in-process (no HTTP — the
wire adds constant cost; the quantity under test is the pipeline) and writes
``BENCH_serve.json`` at the repository root:

* ``serve_batch`` rows — ``requests`` identical-fingerprint solves pushed
  through the service at micro-batch widths {1, 4, 8, 16} and 1/2 workers.
  ``batch=1`` is the one-at-a-time baseline; the paper-economics claim under
  test is that panel sweeps amortize the per-sweep tile/leaf traversal, so
  batched throughput at width >= 8 must be >= 2x the baseline.
* ``serve_cold`` / ``serve_warm`` rows — first request against an empty
  store (pays assembly + factorization) vs a repeat request against the
  warm store (pays only the panel solve): the factorization store's value
  in one number.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the problem so the
bench runs in seconds.  Run standalone
(``python benchmarks/bench_serve.py``) or through pytest.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.service import FactorizationStore, ProblemSpec, SolveService, build_solver

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_serve.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
REPS = int(os.environ.get("REPRO_BENCH_REPS", "1" if SMOKE else "3"))

_N, _NB = (512, 128) if SMOKE else (2000, 256)
_REQUESTS = 32 if SMOKE else 64
_BATCHES = [1, 4, 8, 16]
_WORKERS = [1, 2]
#: Executor for cold-start factorizations (every row records it): override
#: with REPRO_BENCH_EXEC=threaded/process to bench multicore cold builds.
_EXEC_MODE = os.environ.get("REPRO_BENCH_EXEC", "eager")

SPEC = ProblemSpec(kernel="laplace", n=_N, nb=_NB, eps=1e-6, leaf_size=64)


def _run_round(solver, rhs, *, batch: int, workers: int) -> dict:
    """Push all requests through one service configuration; min over REPS."""
    best = None
    for _ in range(REPS):
        svc = SolveService(
            FactorizationStore(),
            workers=workers,
            max_queue=len(rhs) + 1,
            max_batch=batch,
            # Generous coalescing window: submissions are microseconds apart,
            # so full batches form whenever batch > 1.
            max_delay=0.05 if batch > 1 else 0.0,
            solver_provider=lambda k, s: solver,
            exec_mode=_EXEC_MODE,
        )
        t0 = time.perf_counter()
        tickets = [svc.submit(SPEC, b) for b in rhs]
        for t in tickets:
            t.result(timeout=600)
        seconds = time.perf_counter() - t0
        stats = svc.stats()
        svc.close()
        if best is None or seconds < best[0]:
            best = (seconds, stats)
    seconds, stats = best
    lat = stats["latency_seconds"]
    return {
        "case": "serve_batch",
        "n": _N,
        "nb": _NB,
        "batch": batch,
        "workers": workers,
        "exec_mode": stats["executor"]["mode"],
        "exec_workers": stats["executor"]["nworkers"],
        "requests": len(rhs),
        "seconds": seconds,
        "throughput_rps": len(rhs) / seconds,
        "p50_ms": lat.get("p50", lat["mean"]) * 1e3,
        "p95_ms": lat.get("p95", lat["max"]) * 1e3,
        "mean_batch_width": stats["batch_size"]["mean"],
        "sweeps": stats["batch_size"]["count"],
    }


def _cold_vs_warm(tmp_store: Path, rhs0: np.ndarray) -> list[dict]:
    store = FactorizationStore(tmp_store)
    svc = SolveService(store, workers=1, exec_mode=_EXEC_MODE)
    t0 = time.perf_counter()
    svc.solve(SPEC, rhs0)
    cold = time.perf_counter() - t0
    warm = np.inf
    for _ in range(max(3, REPS)):
        t0 = time.perf_counter()
        svc.solve(SPEC, rhs0)
        warm = min(warm, time.perf_counter() - t0)
    stats = svc.stats()
    svc.close()
    executor = {"exec_mode": stats["executor"]["mode"],
                "exec_workers": stats["executor"]["nworkers"]}
    return [
        {"case": "serve_cold", "n": _N, "nb": _NB, "seconds": cold,
         "store_misses": stats["store"]["misses"], **executor},
        {"case": "serve_warm", "n": _N, "nb": _NB, "seconds": warm,
         "store_hits": stats["store"]["hits"],
         "speedup_vs_cold": cold / warm, **executor},
    ]


def run() -> list[dict]:
    rng = np.random.default_rng(0)
    rhs = [rng.standard_normal(_N) for _ in range(_REQUESTS)]
    solver = build_solver(SPEC)  # factorize once; rounds measure serving only

    rows = []
    for workers in _WORKERS:
        for batch in _BATCHES:
            rows.append(_run_round(solver, rhs, batch=batch, workers=workers))

    import tempfile

    with tempfile.TemporaryDirectory() as d:
        rows.extend(_cold_vs_warm(Path(d), rhs[0]))
    OUT_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    return rows


def test_bench_serve():
    rows = run()
    assert OUT_PATH.exists()
    by = {(r["case"], r.get("batch"), r.get("workers")): r for r in rows}
    base = by[("serve_batch", 1, 1)]
    batched = by[("serve_batch", 8, 1)]
    # The acceptance criterion: micro-batching at width >= 8 at least
    # doubles one-at-a-time throughput.
    ratio = batched["throughput_rps"] / base["throughput_rps"]
    assert ratio >= 2.0, f"batch-8 throughput only {ratio:.2f}x baseline"
    # Batches actually formed (otherwise the row measures nothing).
    assert batched["mean_batch_width"] > 4.0, batched
    cold = by[("serve_cold", None, None)]
    warm = by[("serve_warm", None, None)]
    # A warm store must skip the factorization entirely.
    assert warm["store_hits"] >= 1 and cold["store_misses"] == 1
    assert warm["seconds"] < cold["seconds"], (warm, cold)


if __name__ == "__main__":
    for r in run():
        if r["case"] == "serve_batch":
            print(
                f"batch={r['batch']:>2} workers={r['workers']}  "
                f"{r['throughput_rps']:8.1f} req/s  "
                f"p50 {r['p50_ms']:7.2f} ms  p95 {r['p95_ms']:7.2f} ms  "
                f"(width {r['mean_batch_width']:.1f}, {r['sweeps']} sweeps)"
            )
        else:
            print(f"{r['case']:>11}  {r['seconds'] * 1e3:9.2f} ms")
    print(f"\nwrote {OUT_PATH}")
