"""Ablation — sequential task flow vs bulk-synchronous parallelism.

Section III: pre-StarPU OpenMP implementations of the H-LU "realized a
bulk-synchronous parallelism that was limited by synchronizations at each
level of the H-Structure"; the STF runtime removes those barriers.  This
ablation replays the *same* Tile-H LU DAG under both models (and with an
OpenMP-like fork/join cost per barrier) across worker counts.
"""

from __future__ import annotations

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import RuntimeOverheadModel, simulate, simulate_bulk_synchronous

PAPER_N = 40_000
EPS = 1e-4
BARRIER_COST = 5e-5  # an OpenMP fork/join per stage


def test_abl_bulksync(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nb = max(64, n // 16)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def factorize():
        a = TileHMatrix.build(
            kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=min(64, nb))
        )
        return a.factorize()

    info = benchmark.pedantic(factorize, rounds=1, iterations=1)
    zero = RuntimeOverheadModel.zero()

    rows = []
    ratios = {}
    for p in (1, 9, 18, 35):
        stf = simulate(info.graph, p, "prio", overheads=zero).makespan
        bs = simulate_bulk_synchronous(info.graph, p, overheads=zero).makespan
        bs_cost = simulate_bulk_synchronous(
            info.graph, p, overheads=zero, barrier_cost=BARRIER_COST
        ).makespan
        rows.append([p, stf, bs, bs_cost, round(bs_cost / stf, 2)])
        ratios[p] = bs_cost / stf
    emit(
        "abl_bulksync",
        ["workers", "STF s", "bulk-sync s", "bulk-sync + barriers s", "slowdown"],
        rows,
        title=f"Ablation: STF vs bulk-synchronous execution (N={n}, NB={nb})",
    )

    # Serial execution is model-independent.
    assert abs(ratios[1] - 1.0) < 0.1
    # At scale, barriers cost real time: STF wins.
    assert ratios[35] > 1.1, f"bulk-sync only {ratios[35]:.2f}x slower at 35 workers"
