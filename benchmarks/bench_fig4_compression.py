"""Figure 4 — compression ratio vs tile size NB, HMAT-OSS vs H-Chameleon.

The paper sweeps N in [10K, 200K] and NB in [500, 10K] for double (d) and
complex double (z) precision; HMAT-OSS's ratio is flat in NB (its structure
ignores the tile size) while H-Chameleon's varies mildly — the claim being
that fixed-size tile clustering "does not impact the compression ratio".

Reproduction-scale sweep: the same N/NB *ratios* at REPRO_SCALE times the
paper's sizes.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_compression_experiment, series_by

# Paper axes (subset that fits the reproduction's time budget).
PAPER_N = (10_000, 20_000, 40_000)
PAPER_NB = (1000, 2500, 5000)
EPS = 1e-4


@pytest.mark.parametrize("precision", ["d", "z"])
def test_fig4_compression(benchmark, scale, emit, precision):
    n_values = [scale.n(pn) for pn in PAPER_N]
    nb_values = [scale.nb(pnb) for pnb in PAPER_NB]

    rows = benchmark.pedantic(
        lambda: run_compression_experiment(
            precision, n_values, nb_values, eps=EPS, leaf_size=scale.nb(500)
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"fig4_compression_{precision}",
        ["version", "precision", "N", "NB", "compression ratio"],
        [[r.version, r.precision, r.n, r.nb, round(r.ratio, 4)] for r in rows],
        title=f"Figure 4 reproduction ({precision}): compression ratio vs NB",
    )

    # Shape checks mirroring the paper's observations:
    series = series_by(rows, lambda r: (r.version, r.n), "nb", "ratio")
    for (version, n), pts in series.items():
        ratios = [y for _, y in pts]
        if version == "hmat-oss":
            # Flat dashed line: independent of NB.
            assert len(set(ratios)) == 1
        # Everything compresses: well below dense.
        assert all(r < 0.9 for r in ratios)
    # H-Chameleon stays within a modest factor of HMAT-OSS at every point
    # ("the difference is negligible in all cases" at paper scale; at 1/10
    # scale the structures are coarser, so allow 2x).
    for n in n_values:
        hc = dict(series[("h-chameleon", n)])
        hm = dict(series[("hmat-oss", n)])
        for nb, ratio in hc.items():
            assert ratio <= 2.0 * hm[nb] + 0.05
    # Larger problems compress better (the log-linear storage claim).
    best = {
        n: min(y for _, y in series[("h-chameleon", n)]) for n in n_values
    }
    assert best[n_values[-1]] < best[n_values[0]]
