"""Ablation — storage-format comparison: Tile-H vs BLR vs pure H vs dense.

Positions the Tile-H format against the alternatives the related-work
section discusses: flat BLR (simpler, more storage), the classical H-matrix
(best storage, hardest to parallelise) and the dense tiled baseline
(no compression at all).  One problem, one table: storage, sequential LU
kernel time, 35-worker simulated time, and forward error.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import BLRMatrix, DenseTiledLU, HMatSolver
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import assemble_dense, cylinder_cloud, make_kernel
from repro.analysis import forward_error
from repro.runtime import RuntimeOverheadModel

PAPER_N = 20_000
PAPER_NB = 2500
EPS = 1e-4
WORKERS = 35


def test_abl_formats(benchmark, scale, emit):
    n = min(scale.n(PAPER_N), 3000)  # the dense baseline is O(n^3)/O(n^2)
    nb = scale.nb(PAPER_NB)
    leaf = min(scale.nb(500), nb)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    dense = assemble_dense(kern, pts)
    rng = np.random.default_rng(0)
    x0 = rng.standard_normal(n)
    b = dense @ x0
    ovh = RuntimeOverheadModel()

    def sweep():
        rows = []

        th = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=leaf))
        ratio = th.compression_ratio()
        info = th.factorize()
        rows.append(
            [
                "tile-h",
                round(ratio, 4),
                info.sequential_seconds(),
                info.simulate(WORKERS, "prio", overheads=ovh).makespan,
                forward_error(th.solve(b), x0),
            ]
        )

        blr = BLRMatrix.build(kern, pts, TileHConfig(nb=nb, eps=EPS))
        ratio = blr.compression_ratio()
        info = blr.factorize()
        rows.append(
            [
                "blr",
                round(ratio, 4),
                info.sequential_seconds(),
                info.simulate(WORKERS, "prio", overheads=ovh).makespan,
                forward_error(blr.solve(b), x0),
            ]
        )

        hm = HMatSolver(kern, pts, eps=EPS, leaf_size=leaf)
        ratio = hm.compression_ratio()
        hinfo = hm.factorize()
        rows.append(
            [
                "hmat",
                round(ratio, 4),
                hinfo.sequential_seconds(),
                hinfo.simulate(WORKERS, "lws", overheads=ovh).makespan,
                forward_error(hm.solve(b), x0),
            ]
        )

        dt = DenseTiledLU(dense, nb=nb)
        dinfo = dt.factorize()
        rows.append(
            [
                "dense-tiled",
                1.0,
                dinfo.sequential_seconds(),
                dinfo.simulate(WORKERS, "prio", overheads=ovh).makespan,
                forward_error(dt.solve(b), x0),
            ]
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "abl_formats",
        ["format", "compression", "seq LU s", f"{WORKERS}-worker LU s", "fwd error"],
        rows,
        title=f"Ablation: format comparison (N={n}, NB={nb}, eps={EPS}, real double)",
    )

    by = {r[0]: r for r in rows}
    # Compression ordering: hmat <= tile-h <= ~blr < dense (small sizes can
    # tie, so allow slack on the first two).
    assert by["hmat"][1] <= by["tile-h"][1] * 1.2 + 0.02
    assert by["tile-h"][1] <= by["blr"][1] * 1.1 + 0.02
    assert by["blr"][1] < 1.0
    # The dense baseline is exact; compressed formats sit at the eps level.
    assert by["dense-tiled"][4] < 1e-9
    for fmt in ("tile-h", "blr", "hmat"):
        assert by[fmt][4] < 50 * EPS
