"""Figure 5 — H-LU solver forward error vs tile size NB.

The paper solves A x = b with the accuracy parameter set to 1e-4 in both
HMAT and H-Chameleon, and shows that forward errors stay in the same
magnitude order (largest observed differences around 1.5e-4), i.e. the tile
clustering does not degrade the numerics.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_accuracy_experiment, series_by

PAPER_N = (10_000, 20_000)
PAPER_NB = (1000, 2500, 5000)
EPS = 1e-4


@pytest.mark.parametrize("precision", ["d", "z"])
def test_fig5_accuracy(benchmark, scale, emit, precision):
    n_values = [scale.n(pn) for pn in PAPER_N]
    nb_values = [scale.nb(pnb) for pnb in PAPER_NB]

    rows = benchmark.pedantic(
        lambda: run_accuracy_experiment(
            precision, n_values, nb_values, eps=EPS, leaf_size=scale.nb(500)
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"fig5_accuracy_{precision}",
        ["version", "precision", "N", "NB", "forward error"],
        [[r.version, r.precision, r.n, r.nb, r.fwd_error] for r in rows],
        title=f"Figure 5 reproduction ({precision}): forward error vs NB (eps=1e-4)",
    )

    # The paper's claim: all errors stay in the same magnitude order as the
    # accuracy parameter (its plot caps below ~9e-4 with eps=1e-4).
    for r in rows:
        assert r.fwd_error < 50 * EPS, f"{r} beyond the paper's magnitude order"
    # And H-Chameleon is not systematically worse than HMAT: compare medians.
    series = series_by(rows, "version", "nb", "fwd_error")
    hc = sorted(y for _, y in series["h-chameleon"])
    hm = sorted(y for _, y in series["hmat-oss"])
    med = lambda s: s[len(s) // 2]
    assert med(hc) < 20 * med(hm) + 10 * EPS
