"""Ablation — tile-size (NB) trade-off at fixed N.

Section VI lists "defining a way to discover the best tile size for a given
matrix size and number of threads" as an open problem: small NB exposes
concurrency but pays per-task overheads and weaker compression, large NB
the reverse ("the tile size being optimized for the 35 threads case induces
an overhead ... with a low number of threads").  This ablation regenerates
that trade-off: sequential time vs 35-worker simulated time across NB.
"""

from __future__ import annotations

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import RuntimeOverheadModel

PAPER_N = 20_000
PAPER_NBS = (500, 1000, 2500, 5000, 10_000)
EPS = 1e-4


def test_abl_tile_size(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nbs = sorted({scale.nb(p) for p in PAPER_NBS if scale.nb(p) < n})
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    ovh = RuntimeOverheadModel()

    def sweep():
        out = []
        for nb in nbs:
            a = TileHMatrix.build(
                kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=min(scale.nb(500), nb))
            )
            ratio = a.compression_ratio()
            info = a.factorize()
            t1 = info.simulate(1, "prio", overheads=ovh).makespan
            t35 = info.simulate(35, "prio", overheads=ovh).makespan
            out.append([nb, a.nt, round(ratio, 4), info.n_tasks, t1, t35, round(t1 / t35, 2)])
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "abl_tile_size",
        ["NB", "nt", "compression", "tasks", "1-thread s", "35-thread s", "speedup"],
        rows,
        title=f"Ablation: tile-size trade-off (N={n}, real double)",
    )

    # Smaller tiles -> more tasks.
    tasks = [r[3] for r in rows]
    assert tasks == sorted(tasks, reverse=True)
    # Parallelism: the smallest NB must beat the biggest NB in 35-thread
    # speedup (the paper's "optimized for the 35 threads case" observation).
    assert rows[0][6] > rows[-1][6]
