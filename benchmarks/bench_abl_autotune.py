"""Ablation — the tile-size advisor (Section VI's open problem, implemented).

"Defining a way to discover the best tile size for a given matrix size and
number of threads without having the necessity of testing several
combinations is ... an interesting open research area ... Solutions based
on compression estimations could be studied to give hints to the user."

This bench runs the compression-estimation advisor against ground truth:
for each candidate NB the real build + factorisation + simulated 35-worker
time is measured, and the advisor's pick (computed from O(1) sampled tiles)
is compared with the measured optimum.
"""

from __future__ import annotations

from repro.analysis import advise_tile_size
from repro.analysis.experiments import PAPER_EQUIVALENT_OVERHEADS
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel

PAPER_N = 20_000
EPS = 1e-4
WORKERS = 35

# Substrate calibration (see tests/analysis/test_autotune.py): Python task
# dispatch and NumPy BLAS throughput on this machine.
ADVISOR_KWARGS = dict(per_task_overhead=2e-4, flops_per_second=2.7e9)


def test_abl_autotune(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    candidates = sorted({max(40, n // 32), max(64, n // 16), n // 8, n // 4})

    best, advices = advise_tile_size(
        kern, pts, nworkers=WORKERS, candidates=candidates, eps=EPS, **ADVISOR_KWARGS
    )

    def measure_all():
        measured = {}
        for nb in candidates:
            a = TileHMatrix.build(
                kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=min(64, nb))
            )
            info = a.factorize()
            r = info.simulate(WORKERS, "prio", overheads=PAPER_EQUIVALENT_OVERHEADS)
            measured[nb] = r.makespan
        return measured

    measured = benchmark.pedantic(measure_all, rounds=1, iterations=1)

    est = {a.nb: a for a in advices}
    rows = [
        [
            nb,
            est[nb].nt,
            round(est[nb].est_compression, 3),
            est[nb].est_seconds,
            measured[nb],
            "<- advised" if nb == best.nb else "",
        ]
        for nb in candidates
    ]
    emit(
        "abl_autotune",
        ["NB", "nt", "est compression", "est seconds", "measured seconds", ""],
        rows,
        title=f"Ablation: tile-size advisor vs ground truth (N={n}, {WORKERS} workers)",
    )

    # The advisor's pick lands within 1.5x of the measured optimum (the bar
    # for a "hint to the user" heuristic).
    opt = min(measured.values())
    assert measured[best.nb] <= 1.5 * opt, (
        f"advised NB={best.nb} measured {measured[best.nb]:.4f}s vs optimum {opt:.4f}s"
    )
