"""Ablation — asymptotic complexity (the paper's introduction claim).

"The LU Factorization of an n x n H-Matrix (H-LU) requires
Theta(n k^2 log^2 n) flops in H-Arithmetic ... In contrast, the same
factorization costs Theta((2/3) n^3) flops in the dense case."

This bench measures storage and factorisation flops of the H-LU across a
geometric N sweep and fits log-log growth exponents: H storage must grow
clearly subquadratically and H-LU flops clearly subcubically, against the
exact dense exponents (2 and 3).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import HMatSolver
from repro.dense import flops_getrf
from repro.geometry import cylinder_cloud, make_kernel

EPS = 1e-4
PAPER_N = (5000, 10_000, 20_000, 40_000)


def _fit_exponent(ns, ys):
    """Least-squares slope of log y vs log n."""
    ln, ly = np.log(ns), np.log(ys)
    return float(np.polyfit(ln, ly, 1)[0])


def test_abl_complexity(benchmark, scale, emit):
    n_values = [scale.n(pn) for pn in PAPER_N]

    def sweep():
        rows = []
        for n in n_values:
            pts = cylinder_cloud(n)
            kern = make_kernel("laplace", pts)
            hm = HMatSolver(kern, pts, eps=EPS, leaf_size=min(64, n // 4))
            storage = hm.matrix.storage()
            info = hm.factorize()
            h_flops = info.graph.total_work("flops")
            rows.append([n, storage, h_flops, flops_getrf(n)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ns = [r[0] for r in rows]
    storage_exp = _fit_exponent(ns, [r[1] for r in rows])
    h_exp = _fit_exponent(ns, [r[2] for r in rows])
    dense_exp = _fit_exponent(ns, [r[3] for r in rows])
    emit(
        "abl_complexity",
        ["N", "H storage (scalars)", "H-LU flops", "dense LU flops"],
        rows,
        title=(
            "Ablation: asymptotic complexity — fitted exponents: "
            f"H storage n^{storage_exp:.2f}, H-LU n^{h_exp:.2f}, "
            f"dense LU n^{dense_exp:.2f}"
        ),
    )

    # Dense is the n^3 reference (sanity on the fit itself).
    assert 2.9 < dense_exp < 3.1
    # H storage ~ n log n: clearly subquadratic.
    assert storage_exp < 1.7, f"H storage grows as n^{storage_exp:.2f}"
    # H-LU flops ~ n k^2 log^2 n: clearly subcubic.  At reproduction scale
    # the log^2 factors still read as polynomial weight (the asymptotic
    # regime needs the paper's N), so the bound is generous but must stay
    # far below the dense exponent.
    assert h_exp < 2.6, f"H-LU flops grow as n^{h_exp:.2f}"
    assert h_exp < dense_exp - 0.5
    # And the absolute saving at the largest size is substantial (>10x).
    assert rows[-1][2] < 0.1 * rows[-1][3]
