"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's figures at reproduction scale:
it prints the same rows/series the paper plots (run with ``pytest -s`` to
see them live) and writes them to ``benchmarks/out/*.csv`` regardless.

Scale is controlled by the ``REPRO_SCALE`` environment variable (default
0.1: the paper's N=10K becomes 1000 unknowns).  Raise it on a faster
machine to approach the paper's sizes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import ExperimentScale, format_table, write_csv

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def emit():
    """Print a figure's table and persist it as CSV."""

    def _emit(name: str, headers, rows, title: str = ""):
        table = format_table(headers, rows, title=title)
        print("\n" + table + "\n")
        path = write_csv(OUT_DIR / f"{name}.csv", headers, rows)
        (OUT_DIR / f"{name}.txt").write_text(table + "\n")
        return path

    return _emit
