"""Figure 3 — test-case geometry and matrix structure.

The paper's Fig. 3 shows the cylinder mesh, the classical H-matrix rank map
(HMAT format) and the fixed-size Tile-H rank map, with low-rank blocks in
green (annotated with their rank) and dense blocks in red.  This bench
regenerates both structures for the real kernel, reports their leaf
inventories, and writes ASCII rank maps to ``benchmarks/out/``.
"""

from __future__ import annotations

from repro.baselines import HMatSolver
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel

from conftest import OUT_DIR

PAPER_N = 10_000  # Fig. 3 uses the 10K-point cylinder
EPS = 1e-4


def test_fig3_structure(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nb = scale.nb(1000)
    leaf = min(scale.nb(500), nb)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def build_both():
        hm = HMatSolver(kern, pts, eps=EPS, leaf_size=leaf)
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=leaf))
        return hm, th

    hm, th = benchmark.pedantic(build_both, rounds=1, iterations=1)

    hm_counts = hm.matrix.leaf_count()
    fmt = th.desc.format_counts()
    leaf_full = sum(t.mat.leaf_count()["full"] for t in th.desc.super.tiles)
    leaf_rk = sum(t.mat.leaf_count()["rk"] for t in th.desc.super.tiles)
    rows = [
        [
            "hmat (classical)",
            hm_counts["full"],
            hm_counts["rk"],
            hm.matrix.max_rank(),
            round(hm.compression_ratio(), 4),
        ],
        [
            f"tile-h NB={nb} ({fmt['rk']} rk/{fmt['full']} full/{fmt['hmat']} h tiles)",
            leaf_full,
            leaf_rk,
            th.desc.max_rank(),
            round(th.compression_ratio(), 4),
        ],
    ]
    emit(
        "fig3_structure",
        ["format", "dense leaves", "rk leaves", "max rank", "compression"],
        rows,
        title=f"Figure 3 reproduction: structure inventory (N={n}, real double)",
    )

    # ASCII rank maps (the paper's green/red mosaics).
    art_h = hm.matrix.render_structure(width=64)
    art_t = th.desc.super.get_blktile(0, 0).mat.render_structure(width=32)
    (OUT_DIR / "fig3_rankmap_hmat.txt").write_text(art_h + "\n")
    (OUT_DIR / "fig3_rankmap_tileh_diag.txt").write_text(art_t + "\n")
    print("classical H-matrix rank map (dense '#', Rk blocks by rank digit):")
    print(art_h)
    print(f"\ndiagonal Tile-H tile (NB={nb}) rank map:")
    print(art_t)

    # Structural facts the figure displays:
    assert hm_counts["rk"] > 0 and hm_counts["full"] > 0
    assert th.desc.max_rank() > 0
    assert hm.compression_ratio() < 0.6  # real case: storage concentrates near diagonal
