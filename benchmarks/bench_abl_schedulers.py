"""Ablation — scheduler policies, including the `eager` baseline.

Section V-C: "the strategies based on priorities provide higher
performance, and the simple priority strategy turns to be the best in most
of the cases, except the smaller dimensions" (central-queue contention on
cheap tasks).  This ablation sweeps all four policies on one mid-size
problem, with and without runtime overheads, to expose both effects.
"""

from __future__ import annotations

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import SCHEDULER_NAMES, RuntimeOverheadModel

PAPER_N = 40_000
PAPER_NB = 1000
EPS = 1e-4
THREADS = (1, 9, 18, 35)


def test_abl_schedulers(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nb = scale.nb(PAPER_NB)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def factorize():
        a = TileHMatrix.build(
            kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=min(scale.nb(500), nb))
        )
        return a.factorize()

    info = benchmark.pedantic(factorize, rounds=1, iterations=1)

    overhead_models = {
        "no-overhead": RuntimeOverheadModel.zero(),
        "starpu-like": RuntimeOverheadModel(),
    }
    rows = []
    results = {}
    for label, ovh in overhead_models.items():
        for sched in SCHEDULER_NAMES:
            for p in THREADS:
                r = info.simulate(p, sched, overheads=ovh)
                rows.append([label, sched, p, r.makespan, round(r.efficiency, 3)])
                results[(label, sched, p)] = r.makespan
    emit(
        "abl_schedulers",
        ["overheads", "scheduler", "threads", "LU seconds", "efficiency"],
        rows,
        title=f"Ablation: scheduler policies (N={n}, NB={nb}, real double)",
    )

    # Priority-aware schedulers do not lose to eager at scale.
    for label in overhead_models:
        assert results[(label, "prio", 35)] <= results[(label, "eager", 35)] * 1.25
    # All schedulers produce valid speedups.
    for (label, sched, p), mk in results.items():
        assert mk <= results[(label, sched, 1)] + 1e-12
