"""Ablation — sensitivity to the per-dependency runtime overhead.

The paper's explanation for HMAT losing the real-double comparison is that
"the cost of handling all fine grain dependencies becomes too important
with respect to the computational tasks".  This ablation sweeps the
per-dependency overhead from zero upward and shows the crossover: with no
overhead the fine-grain HMAT DAG (more parallelism) can match or beat
Tile-H, and as the overhead grows the Tile-H coarse DAG wins by an
increasing margin.
"""

from __future__ import annotations

from repro.baselines import HMatSolver
from repro.core import TileHConfig, TileHMatrix
from repro.geometry import cylinder_cloud, make_kernel
from repro.runtime import RuntimeOverheadModel

PAPER_N = 20_000
PAPER_NB = 500
EPS = 1e-4
WORKERS = 18
DEP_COSTS = (0.0, 1e-7, 5e-7, 2e-6, 1e-5, 5e-5)


def test_abl_dep_overhead(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    # Same floor as Figs. 6-7: keep tiles coarse so the Tile-H DAG stays
    # structurally coarser than the fine-grain HMAT DAG.
    nb = scale.nb(PAPER_NB, floor=max(64, n // 16))
    leaf = min(scale.nb(500), nb)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def factorize_both():
        th = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=EPS, leaf_size=leaf))
        ti = th.factorize()
        hm = HMatSolver(kern, pts, eps=EPS, leaf_size=leaf)
        hi = hm.factorize()
        return ti, hi

    ti, hi = benchmark.pedantic(factorize_both, rounds=1, iterations=1)

    rows = []
    ratios = []
    for dep in DEP_COSTS:
        ovh = RuntimeOverheadModel(per_task=1e-6, per_dependency=dep)
        t_tile = ti.simulate(WORKERS, "prio", overheads=ovh).makespan
        t_hmat = hi.simulate(WORKERS, "lws", overheads=ovh).makespan
        rows.append([dep, t_tile, t_hmat, round(t_hmat / t_tile, 3)])
        ratios.append(t_hmat / t_tile)
    emit(
        "abl_dep_overhead",
        ["per-dep overhead (s)", "tile-h seconds", "hmat seconds", "hmat/tile-h"],
        rows,
        title=(
            f"Ablation: dependency-handling cost (N={n}, NB={nb}, "
            f"{WORKERS} workers; tile-h DAG {ti.n_dependencies} deps, "
            f"hmat DAG {hi.n_dependencies} deps)"
        ),
    )

    # The fine-grain DAG has far more dependencies...
    assert hi.n_dependencies > 3 * ti.n_dependencies
    # ...so its relative cost grows monotonically with the per-dep overhead
    # (allowing tiny simulator noise), and the largest overhead hurts HMAT
    # strictly more than the smallest.
    assert ratios[-1] > ratios[0] * 1.5
