"""GP regression benchmark: train makespan, served-predict throughput, accuracy.

Drives the GP subsystem end to end and writes ``BENCH_gp.json`` at the
repository root:

* ``gp_train`` rows — covariance factorisation (tiled H-Cholesky) makespan
  per executor (eager vs threaded), the cold-train cost a store amortises.
* ``gp_predict_batch`` rows — ``n_test`` posterior predictions pushed through
  a real :class:`~repro.service.SolveService` (one solve request per test
  point, RHS = its cross-covariance column) at micro-batch widths {1, 4, 8}.
  The acceptance claim under test: batched predictions coalesce into panel
  sweeps, so width >= 8 throughput must be >= 2x the one-at-a-time baseline.
* ``gp_accuracy`` rows — H-compressed posterior vs the dense NumPy reference
  across ACA tolerances: mean relative error must track ``eps`` (<= 10x).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the problem so the
bench runs in seconds and writes to the untracked ``benchmarks/out/``
scratch path.  Run standalone (``python benchmarks/bench_gp.py``) or through
pytest.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import TileHConfig
from repro.geometry import assemble_dense
from repro.gp import GPModel, synthetic_gp_data
from repro.service import FactorizationStore, ProblemSpec, SolveService, build_solver

REPO_ROOT = Path(__file__).resolve().parent.parent

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
# Smoke runs (CI) write to the untracked benchmarks/out/ scratch path: the
# tracked BENCH_gp.json holds full-mode numbers and a smoke run must never
# clobber them (CI asserts the tracked file stays byte-identical).
OUT_PATH = (
    REPO_ROOT / "benchmarks" / "out" / "BENCH_gp.json"
    if SMOKE
    else REPO_ROOT / "BENCH_gp.json"
)
REPS = int(os.environ.get("REPRO_BENCH_REPS", "1" if SMOKE else "3"))

_N, _NB = (400, 100) if SMOKE else (1200, 200)
_N_TEST = 32 if SMOKE else 64
_BATCHES = [1, 4, 8]
_EPS = 1e-6
_ACCURACY_EPS = [1e-2, 1e-4, 1e-6]
_HYPERS = dict(length=0.3, signal=1.0, noise=0.05)

SPEC = ProblemSpec(
    kernel="sqexp", n=_N, kind="gp", nb=_NB, eps=_EPS, leaf_size=48, **_HYPERS
)


def _config(**kw) -> TileHConfig:
    return TileHConfig(nb=_NB, eps=_EPS, leaf_size=48, **kw)


def _train_rows(x, y) -> list[dict]:
    rows = []
    for exec_mode in ("eager", "threaded"):
        kw = {} if exec_mode == "eager" else dict(exec_mode="threaded", nworkers=2)
        best = np.inf
        info = None
        for _ in range(REPS):
            model = GPModel("sqexp", **_HYPERS, config=_config(**kw))
            t0 = time.perf_counter()
            model.fit(x, y)
            best = min(best, time.perf_counter() - t0)
            info = model.info_
        rows.append({
            "case": "gp_train",
            "n": _N,
            "nb": _NB,
            "eps": _EPS,
            "exec_mode": exec_mode,
            "seconds": best,
            "tasks": len(info.graph),
            "flops": info.graph.total_work("flops"),
        })
    return rows


def _predict_rows(x, y, x_test) -> list[dict]:
    solver = build_solver(SPEC)  # factorise once; rounds measure serving only
    kern = GPModel("sqexp", **_HYPERS).kernel_function(x)
    ks = kern(x, x_test)
    kdiag = kern.diag(x_test)

    rows = []
    for batch in _BATCHES:
        best = None
        for _ in range(REPS):
            svc = SolveService(
                FactorizationStore(),
                workers=1,
                max_queue=_N_TEST + 1,
                max_batch=batch,
                max_delay=0.05 if batch > 1 else 0.0,
                solver_provider=lambda k, s: solver,
            )
            t0 = time.perf_counter()
            tickets = [svc.submit(SPEC, ks[:, j]) for j in range(_N_TEST)]
            v = np.column_stack([t.result(timeout=600) for t in tickets])
            seconds = time.perf_counter() - t0
            stats = svc.stats()
            svc.close()
            if best is None or seconds < best[0]:
                best = (seconds, stats, v)
        seconds, stats, v = best
        mean = v.T @ y
        var = np.clip(kdiag - np.einsum("ij,ij->j", ks, v), 0.0, None)
        lat = stats["latency_seconds"]
        rows.append({
            "case": "gp_predict_batch",
            "n": _N,
            "nb": _NB,
            "n_test": _N_TEST,
            "batch": batch,
            "seconds": seconds,
            "throughput_rps": _N_TEST / seconds,
            "p50_ms": lat.get("p50", lat["mean"]) * 1e3,
            "p95_ms": lat.get("p95", lat["max"]) * 1e3,
            "mean_batch_width": stats["batch_size"]["mean"],
            "sweeps": stats["batch_size"]["count"],
            "mean_norm": float(np.linalg.norm(mean)),
            "var_max": float(var.max()),
        })
    return rows


def _accuracy_rows(x, y, x_test) -> list[dict]:
    kern = GPModel("sqexp", **_HYPERS).kernel_function(x)
    k = assemble_dense(kern, x)
    ks = kern(x, x_test)
    ref_mean = ks.T @ np.linalg.solve(k, y)
    ref_var = kern.diag(x_test) - np.einsum("ij,ij->j", ks, np.linalg.solve(k, ks))

    rows = []
    for eps in _ACCURACY_EPS:
        cfg = TileHConfig(nb=_NB, eps=eps, leaf_size=48)
        model = GPModel("sqexp", **_HYPERS, config=cfg).fit(x, y)
        mean, var = model.predict(x_test)
        rows.append({
            "case": "gp_accuracy",
            "n": _N,
            "nb": _NB,
            "n_test": x_test.shape[0],
            "eps": eps,
            "mean_rel_err": float(
                np.linalg.norm(mean - ref_mean) / np.linalg.norm(ref_mean)
            ),
            "var_max_err": float(np.max(np.abs(var - ref_var))),
            "compression": model.solver_.compression_ratio(),
        })
    return rows


def run() -> list[dict]:
    x, y, x_test, _ = synthetic_gp_data(
        _N, _N_TEST, geometry="cylinder", noise=_HYPERS["noise"], seed=0
    )
    rows = _train_rows(x, y)
    rows.extend(_predict_rows(x, y, x_test))
    rows.extend(_accuracy_rows(x, y, x_test))
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    return rows


def test_bench_gp():
    rows = run()
    assert OUT_PATH.exists()
    by_batch = {r["batch"]: r for r in rows if r["case"] == "gp_predict_batch"}
    # Acceptance criterion: batched posterior predictions at width >= 8 at
    # least double the one-at-a-time throughput.
    ratio = by_batch[8]["throughput_rps"] / by_batch[1]["throughput_rps"]
    assert ratio >= 2.0, f"batch-8 predict throughput only {ratio:.2f}x baseline"
    assert by_batch[8]["mean_batch_width"] > 2.0, by_batch[8]
    # Acceptance criterion: H-vs-dense posterior mean tracks the ACA
    # tolerance at every eps.
    for r in rows:
        if r["case"] == "gp_accuracy":
            assert r["mean_rel_err"] <= 10 * r["eps"], r
    train = [r for r in rows if r["case"] == "gp_train"]
    assert {r["exec_mode"] for r in train} == {"eager", "threaded"}
    assert all(r["seconds"] > 0 and r["tasks"] > 0 for r in train)


if __name__ == "__main__":
    for r in run():
        if r["case"] == "gp_train":
            print(f"train {r['exec_mode']:>8}  {r['seconds'] * 1e3:9.1f} ms  "
                  f"({r['tasks']} tasks)")
        elif r["case"] == "gp_predict_batch":
            print(f"predict batch={r['batch']:>2}  {r['throughput_rps']:8.1f} pred/s  "
                  f"p95 {r['p95_ms']:7.2f} ms  (width {r['mean_batch_width']:.1f}, "
                  f"{r['sweeps']} sweeps)")
        else:
            print(f"accuracy eps={r['eps']:g}  mean rel err {r['mean_rel_err']:.2e}  "
                  f"compression {r['compression']:.2f}x")
    print(f"\nwrote {OUT_PATH}")
