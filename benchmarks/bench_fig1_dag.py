"""Figure 1 — the task DAG of a 3x3 tiled full-rank LU.

The paper's Fig. 1 draws the DAG of Algorithm 1 on a 3 x 3 tile grid:
3 GETRF, 6 TRSM and 5 GEMM tasks.  This bench regenerates that exact DAG
from the STF engine (dense tiles, so the structure is the paper's), checks
the node/edge structure, and writes the GraphViz DOT rendering.
"""

from __future__ import annotations

import numpy as np

from conftest import OUT_DIR

from repro.baselines import DenseTiledLU


def test_fig1_dag(benchmark, emit):
    rng = np.random.default_rng(0)
    n, nb = 96, 32  # 3 x 3 tiles
    a = rng.standard_normal((n, n)) + n * np.eye(n)

    def factorize():
        lu = DenseTiledLU(a, nb=nb)
        return lu.factorize()

    info = benchmark.pedantic(factorize, rounds=1, iterations=1)
    g = info.graph
    counts = g.kind_counts()
    emit(
        "fig1_dag",
        ["kind", "tasks"],
        [[k, v] for k, v in sorted(counts.items())],
        title="Figure 1 reproduction: task census of the 3x3 tiled LU DAG",
    )
    dot = g.to_dot()
    (OUT_DIR / "fig1_dag.dot").write_text(dot + "\n")
    print(dot)

    # The paper's exact figure: 3 GETRF + 6 TRSM + 5 GEMM = 14 tasks.
    assert counts == {"getrf": 3, "trsm": 6, "gemm": 5}
    assert len(g) == 14
    # Root is getrf(0); the final getrf(2) depends (transitively) on all
    # earlier panels.  Check direct structure: getrf(0) has no deps, each
    # TRSM of panel 0 depends only on getrf(0).
    tasks = {t.label: t for t in g.tasks}
    assert tasks["getrf(0)"].deps == set()
    for lbl in ("trsm_u(0,1)", "trsm_u(0,2)", "trsm_l(1,0)", "trsm_l(2,0)"):
        assert tasks[lbl].deps == {tasks["getrf(0)"].id}
    # gemm(1,1,0) joins the two panel TRSMs.
    assert tasks["gemm(1,1,0)"].deps == {
        tasks["trsm_l(1,0)"].id,
        tasks["trsm_u(0,1)"].id,
    }
    # getrf(1) waits exactly on its Schur update.
    assert tasks["getrf(1)"].deps == {tasks["gemm(1,1,0)"].id}
