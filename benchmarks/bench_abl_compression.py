"""Ablation — compression method (ACA vs SVD) and admissibility (eta).

Section II-A notes that most H-operations truncate via the SVD, with ACA as
the cheaper approximate alternative for assembly.  This ablation measures
both on one problem: assembly time, storage and matvec accuracy for
ACA-vs-SVD, and the structure/storage effect of the admissibility
parameter eta.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import TileHConfig, TileHMatrix
from repro.geometry import assemble_dense, cylinder_cloud, make_kernel

PAPER_N = 20_000
PAPER_NB = 2500
EPS = 1e-4
ETAS = (0.5, 1.0, 2.0, 4.0)


def test_abl_compression_method(benchmark, scale, emit):
    n = min(scale.n(PAPER_N), 3000)  # SVD assembly densifies blocks: cap n
    nb = scale.nb(PAPER_NB)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    dense = assemble_dense(kern, pts)
    x = np.random.default_rng(0).standard_normal(n)
    ref = dense @ x

    def run(method):
        t0 = time.perf_counter()
        a = TileHMatrix.build(
            kern,
            pts,
            TileHConfig(nb=nb, eps=EPS, leaf_size=min(scale.nb(500), nb), method=method),
        )
        elapsed = time.perf_counter() - t0
        err = float(np.linalg.norm(a.matvec(x) - ref) / np.linalg.norm(ref))
        return [method, elapsed, round(a.compression_ratio(), 4), err]

    rows = benchmark.pedantic(
        lambda: [run("aca"), run("svd"), run("rsvd")], rounds=1, iterations=1
    )
    emit(
        "abl_compression_method",
        ["method", "assembly seconds", "compression", "matvec rel err"],
        rows,
        title=f"Ablation: ACA vs SVD vs randomized SVD assembly (N={n}, NB={nb}, eps={EPS})",
    )
    by = {r[0]: r for r in rows}
    # All meet the accuracy target (same magnitude order as eps).
    for method in ("aca", "svd", "rsvd"):
        assert by[method][3] < 50 * EPS, method
    # ACA and rSVD storage stays within a modest factor of the SVD optimum.
    assert by["aca"][2] <= 1.5 * by["svd"][2] + 0.01
    assert by["rsvd"][2] <= 1.5 * by["svd"][2] + 0.01


def test_abl_admissibility_eta(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nb = scale.nb(PAPER_NB)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def sweep():
        out = []
        for eta in ETAS:
            a = TileHMatrix.build(
                kern,
                pts,
                TileHConfig(nb=nb, eps=EPS, leaf_size=min(scale.nb(500), nb), eta=eta),
            )
            counts = a.desc.format_counts()
            out.append(
                [eta, round(a.compression_ratio(), 4), a.desc.max_rank(), counts["rk"]]
            )
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "abl_admissibility_eta",
        ["eta", "compression", "max rank", "rk tiles"],
        rows,
        title=f"Ablation: admissibility parameter (N={n}, NB={nb})",
    )
    # Looser admissibility admits at least as many whole-tile Rk blocks.
    rk_tiles = [r[3] for r in rows]
    assert rk_tiles == sorted(rk_tiles)
