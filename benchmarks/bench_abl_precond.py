"""Ablation — accuracy strategies: direct eps, refinement, preconditioning.

Three ways to spend the accuracy budget with the same machinery:

* direct: factor at eps = 1e-4, solve once (the paper's protocol);
* refinement: same factorisation + iterative refinement against the exact
  operator (machine precision for a few extra solves);
* preconditioned: factor *loosely* (eps = 1e-2, cheaper assembly and LU) and
  run GMRES against the exact operator.

The table reports build/factor/solve cost splits and final forward errors.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import forward_error
from repro.core import TileHConfig, TileHMatrix, gmres
from repro.geometry import DenseOperator, cylinder_cloud, make_kernel

PAPER_N = 20_000


def test_abl_precond(benchmark, scale, emit):
    n = scale.n(PAPER_N)
    nb = max(64, n // 12)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)
    op = DenseOperator(kern, pts)
    x0 = np.random.default_rng(0).standard_normal(n)
    b = op.matvec(x0)

    def run_all():
        rows = []

        def run(label, eps, mode):
            t0 = time.perf_counter()
            a = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=eps))
            t_build = time.perf_counter() - t0
            t0 = time.perf_counter()
            info = a.factorize()
            t_fact = time.perf_counter() - t0
            t0 = time.perf_counter()
            if mode == "direct":
                x = a.solve(b)
                inner = 0
            elif mode == "refined":
                x, hist = a.solve_refined(b, op.matvec)
                inner = len(hist)
            else:
                res = gmres(op.matvec, b, precond=a.solve, rtol=1e-12)
                assert res.converged
                x = res.x
                inner = res.iterations
            t_solve = time.perf_counter() - t0
            rows.append(
                [label, eps, t_build, t_fact, t_solve, inner, forward_error(x, x0)]
            )

        run("direct", 1e-4, "direct")
        run("refined", 1e-4, "refined")
        run("loose+gmres", 1e-2, "gmres")
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "abl_precond",
        ["strategy", "eps", "build s", "factor s", "solve s", "inner", "fwd error"],
        rows,
        title=f"Ablation: accuracy strategies (N={n}, NB={nb})",
    )
    by = {r[0]: r for r in rows}
    # Direct lands at eps accuracy; the other two reach near machine precision.
    assert by["direct"][6] < 5e-3
    assert by["refined"][6] < 1e-10
    assert by["loose+gmres"][6] < 1e-9
    # The loose factorisation is cheaper than the tight one (build + factor).
    assert (by["loose+gmres"][2] + by["loose+gmres"][3]) < 1.2 * (
        by["direct"][2] + by["direct"][3]
    )


def test_abl_solve_phase(benchmark, scale, emit):
    """Solve-phase DAG: triangular substitution has little task parallelism
    (pipeline only) — quantified with the task-parallel solve of
    ``tiled_solve_tasks`` against the factorisation DAG."""
    from repro.core import tiled_solve_tasks
    from repro.analysis.experiments import PAPER_EQUIVALENT_OVERHEADS

    n = scale.n(PAPER_N)
    nb = max(64, n // 16)
    pts = cylinder_cloud(n)
    kern = make_kernel("laplace", pts)

    def setup():
        a = TileHMatrix.build(kern, pts, TileHConfig(nb=nb, eps=1e-4))
        lu_info = a.factorize()
        x, solve_graph = tiled_solve_tasks(a.desc, np.ones(n))
        return lu_info, solve_graph

    lu_info, solve_graph = benchmark.pedantic(setup, rounds=1, iterations=1)
    rows = []
    for label, graph in (("factorisation", lu_info.graph), ("solve", solve_graph)):
        t1 = None
        for p in (1, 9, 35):
            from repro.runtime import simulate

            r = simulate(graph, p, "prio", overheads=PAPER_EQUIVALENT_OVERHEADS)
            if p == 1:
                t1 = r.makespan
            rows.append([label, p, r.makespan, round(t1 / r.makespan, 2)])
    emit(
        "abl_solve_phase",
        ["phase", "workers", "seconds", "speedup"],
        rows,
        title=f"Ablation: factorisation vs solve-phase parallelism (N={n}, NB={nb})",
    )
    speedups = {(r[0], r[1]): r[3] for r in rows}
    # The LU DAG parallelises; the triangular solve barely does.
    assert speedups[("factorisation", 35)] > 2 * speedups[("solve", 35)]
